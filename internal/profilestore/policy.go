package profilestore

import "fmt"

// Eviction policies. The store's contract (Get/Put/Invalidate/Stats,
// shared immutable instances, singleflight cold loads) is identical
// under every policy; only the choice of eviction victim differs.
//
//   - PolicyLRU (default) keeps the exact pre-v2 behavior: one
//     intrusive recency list per shard, hit = splice to front, victim
//     = tail. Best when the working set fits and access is bursty.
//   - PolicyLFU keeps use counts in O(1) frequency buckets (an
//     intrusive list of buckets, each an intrusive LRU list of
//     entries). Victim = least-used, ties broken least-recent. Best
//     when a few driver styles dominate a churny tail: a one-shot key
//     can never displace a profile with real hit history.
//   - Policy2Q is the classic two-queue design: first-touch keys
//     enter a small FIFO probation queue (A1in); only keys touched
//     again after leaving probation (tracked by a ghost key queue,
//     A1out) are promoted to the protected main LRU (Am). Scans churn
//     the probation queue and never disturb the hot set.
//
// All policy bookkeeping runs under the owning shard's mutex and
// allocates nothing on the hit path (LFU's frequency buckets recycle
// through a freelist; the in-place bump below keeps the common
// lone-entry case pointer-stable).
type Policy uint8

const (
	// PolicyLRU evicts the least-recently-used profile (default).
	PolicyLRU Policy = iota
	// PolicyLFU evicts the least-frequently-used profile (ties:
	// least-recent within the lowest frequency).
	PolicyLFU
	// Policy2Q evicts from a FIFO probation queue first, protecting
	// profiles with a proven re-reference from scan churn.
	Policy2Q
)

// String names the policy for metric labels and flags.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyLFU:
		return "lfu"
	case Policy2Q:
		return "2q"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy maps a flag value onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return PolicyLRU, nil
	case "lfu":
		return PolicyLFU, nil
	case "2q", "twoq":
		return Policy2Q, nil
	default:
		return PolicyLRU, fmt.Errorf("profilestore: unknown policy %q (have lru, lfu, 2q)", s)
	}
}

// policy is the per-shard eviction strategy. Every method runs under
// the owning shard's mutex, touches only intrusive links, and must
// not allocate on the hit path (touched). Entries enter via admitted,
// leave via evict (the policy picks and unlinks the victim) or
// removed (the caller picked: Invalidate, replace bookkeeping).
type policy interface {
	// touched records a cache hit on a resident entry.
	touched(e *entry)
	// admitted records a new resident entry.
	admitted(e *entry)
	// removed unlinks an entry the caller is dropping (Invalidate).
	removed(e *entry)
	// evict picks the victim, unlinks it, and returns it; nil when the
	// policy tracks nothing evictable.
	evict() *entry
	// remembers reports whether the policy holds recent-history
	// evidence for a non-resident key (2Q's ghost queue). The
	// admission filter treats that as a proven second touch.
	remembers(key string) bool
}

// newPolicy builds the per-shard policy instance.
func newPolicy(kind Policy, capacity int) policy {
	switch kind {
	case PolicyLFU:
		return &lfuPolicy{}
	case Policy2Q:
		kin := capacity / 4
		if kin < 1 {
			kin = 1
		}
		kout := capacity / 2
		if kout < 1 {
			kout = 1
		}
		return &twoQPolicy{kin: kin, kout: kout, ghosts: make(map[string]*ghost)}
	default:
		return &lruPolicy{}
	}
}

// list is one intrusive doubly-linked entry list (head = most
// recently placed, tail = eviction end). It is the exact list the
// pre-v2 store inlined in the shard; every policy builds on it.
type list struct {
	head, tail *entry
	n          int
}

// pushFront links e at the head. e must be unlinked.
func (l *list) pushFront(e *entry) {
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.n++
}

// remove unlinks e.
func (l *list) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if l.head == e {
		l.head = e.next
	}
	if l.tail == e {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

// moveToFront splices a linked e to the head.
func (l *list) moveToFront(e *entry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// popTail unlinks and returns the tail, nil when empty.
func (l *list) popTail() *entry {
	e := l.tail
	if e != nil {
		l.remove(e)
	}
	return e
}

// ── LRU ──────────────────────────────────────────────────────────────
//
// Bit-identical to the pre-v2 store: TestLRUTraceMatchesReference
// pins the eviction order against an independent reference model.

type lruPolicy struct{ l list }

func (p *lruPolicy) touched(e *entry)      { p.l.moveToFront(e) }
func (p *lruPolicy) admitted(e *entry)     { p.l.pushFront(e) }
func (p *lruPolicy) removed(e *entry)      { p.l.remove(e) }
func (p *lruPolicy) evict() *entry         { return p.l.popTail() }
func (p *lruPolicy) remembers(string) bool { return false }

// ── LFU ──────────────────────────────────────────────────────────────

// freqBucket chains the entries sharing one use count (LRU-ordered
// within), itself linked into the policy's ascending-frequency bucket
// list. Buckets recycle through a freelist, so steady-state hits
// allocate nothing.
type freqBucket struct {
	freq       uint64
	entries    list
	prev, next *freqBucket
}

type lfuPolicy struct {
	least *freqBucket // lowest-frequency bucket (eviction end)
	free  *freqBucket // spare bucket nodes, next-linked
}

// bucketAfter inserts a recycled-or-new bucket with the given freq
// after prev (prev == nil: at the least end).
func (p *lfuPolicy) bucketAfter(prev *freqBucket, freq uint64) *freqBucket {
	b := p.free
	if b != nil {
		p.free = b.next
		*b = freqBucket{freq: freq}
	} else {
		b = &freqBucket{freq: freq}
	}
	if prev == nil {
		b.next = p.least
		if p.least != nil {
			p.least.prev = b
		}
		p.least = b
	} else {
		b.next = prev.next
		b.prev = prev
		if prev.next != nil {
			prev.next.prev = b
		}
		prev.next = b
	}
	return b
}

// release unlinks an emptied bucket and parks it on the freelist.
func (p *lfuPolicy) release(b *freqBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
	if p.least == b {
		p.least = b.next
	}
	b.prev = nil
	b.next = p.free
	p.free = b
}

func (p *lfuPolicy) admitted(e *entry) {
	b := p.least
	if b == nil || b.freq != 1 {
		b = p.bucketAfter(nil, 1)
	}
	e.fb = b
	b.entries.pushFront(e)
}

func (p *lfuPolicy) touched(e *entry) {
	b := e.fb
	want := b.freq + 1
	if b.entries.n == 1 && (b.next == nil || b.next.freq > want) {
		// Alone in its bucket with headroom above: bump in place — the
		// steady-state path for a hot profile, zero work beyond the
		// increment.
		b.freq = want
		return
	}
	b.entries.remove(e)
	dst := b.next
	if dst == nil || dst.freq != want {
		dst = p.bucketAfter(b, want)
	}
	e.fb = dst
	dst.entries.pushFront(e)
	if b.entries.n == 0 {
		p.release(b)
	}
}

func (p *lfuPolicy) removed(e *entry) {
	b := e.fb
	b.entries.remove(e)
	e.fb = nil
	if b.entries.n == 0 {
		p.release(b)
	}
}

func (p *lfuPolicy) evict() *entry {
	b := p.least
	if b == nil {
		return nil
	}
	e := b.entries.popTail()
	if e != nil {
		e.fb = nil
	}
	if b.entries.n == 0 {
		p.release(b)
	}
	return e
}

func (p *lfuPolicy) remembers(string) bool { return false }

// ── 2Q ───────────────────────────────────────────────────────────────

// ghost is one remembered key in A1out: evicted-from-probation
// history without the profile. Ghosts are what let 2Q tell "touched
// again after probation" from "first touch".
type ghost struct {
	key        string
	prev, next *ghost
}

// queue tags for entry.q.
const (
	qIn   = 1 // A1in: FIFO probation
	qMain = 2 // Am: protected LRU
)

type twoQPolicy struct {
	kin, kout int // probation / ghost bounds
	in        list
	main      list
	ghosts    map[string]*ghost
	ghead     *ghost // newest ghost
	gtail     *ghost // oldest ghost (dropped first)
	nGhost    int
}

func (p *twoQPolicy) admitted(e *entry) {
	if g, ok := p.ghosts[e.key]; ok {
		// Second chance proven: the key was through probation recently.
		p.dropGhost(g)
		e.q = qMain
		p.main.pushFront(e)
		return
	}
	e.q = qIn
	p.in.pushFront(e)
}

func (p *twoQPolicy) touched(e *entry) {
	if e.q == qMain {
		p.main.moveToFront(e)
	}
	// A1in is FIFO: a hit during probation does not reorder it — that
	// is exactly what keeps a fast scan from looking hot.
}

func (p *twoQPolicy) removed(e *entry) {
	if e.q == qMain {
		p.main.remove(e)
	} else {
		p.in.remove(e)
	}
	e.q = 0
}

func (p *twoQPolicy) evict() *entry {
	if p.in.n > p.kin || p.main.n == 0 {
		if e := p.in.popTail(); e != nil {
			e.q = 0
			p.addGhost(e.key)
			return e
		}
	}
	if e := p.main.popTail(); e != nil {
		e.q = 0
		return e
	}
	return nil
}

func (p *twoQPolicy) remembers(key string) bool {
	_, ok := p.ghosts[key]
	return ok
}

func (p *twoQPolicy) addGhost(key string) {
	if g, ok := p.ghosts[key]; ok {
		p.dropGhost(g)
	}
	g := &ghost{key: key, next: p.ghead}
	if p.ghead != nil {
		p.ghead.prev = g
	}
	p.ghead = g
	if p.gtail == nil {
		p.gtail = g
	}
	p.ghosts[key] = g
	p.nGhost++
	for p.nGhost > p.kout && p.gtail != nil {
		p.dropGhost(p.gtail)
	}
}

func (p *twoQPolicy) dropGhost(g *ghost) {
	if g.prev != nil {
		g.prev.next = g.next
	}
	if g.next != nil {
		g.next.prev = g.prev
	}
	if p.ghead == g {
		p.ghead = g.next
	}
	if p.gtail == g {
		p.gtail = g.prev
	}
	delete(p.ghosts, g.key)
	p.nGhost--
}
