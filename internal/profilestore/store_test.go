package profilestore

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"vihot/internal/core"
	"vihot/internal/dsp"
	"vihot/internal/obs"
)

// writeLegacyGob emits the pre-envelope on-disk encoding, for
// migration-path coverage.
func writeLegacyGob(w io.Writer, p *core.Profile) error {
	return gob.NewEncoder(w).Encode(p)
}

// synthProfile builds a small deterministic profile; seed varies the
// content so distinct keys get distinct fingerprints.
func synthProfile(t testing.TB, positions int, seed float64) *core.Profile {
	t.Helper()
	var recs []core.SweepRecording
	for i := 0; i < positions; i++ {
		rec := core.SweepRecording{Position: i, Fingerprint: float64(i)*0.5 - 1 + seed*0.01}
		for ts := 0.0; ts < 4; ts += 0.005 {
			theta := 80 * math.Sin(2*math.Pi*ts/4)
			phi := rec.Fingerprint + 0.8*math.Sin(theta*math.Pi/180)
			rec.Phase = append(rec.Phase, dsp.Sample{T: ts, V: phi})
			rec.Orientation = append(rec.Orientation, dsp.Sample{T: ts, V: theta})
		}
		recs = append(recs, rec)
	}
	p, err := core.BuildProfile(recs, 100)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// countingLoader serves synthetic profiles and counts Load calls.
type countingLoader struct {
	calls atomic.Int64
	t     testing.TB
	fail  map[string]error
}

func (cl *countingLoader) Load(key string) (*core.Profile, error) {
	cl.calls.Add(1)
	if err, ok := cl.fail[key]; ok {
		return nil, err
	}
	seed := 0.0
	for _, c := range key {
		seed += float64(c)
	}
	return synthProfile(cl.t, 2, seed), nil
}

func TestStoreHitMissLRUEviction(t *testing.T) {
	cl := &countingLoader{t: t}
	s := New(Config{Shards: 1, Capacity: 2, Loader: cl})

	a1, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("repeat Get returned a different instance")
	}
	if _, err := s.Get("b"); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("c"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if s.Len() != 2 {
		t.Errorf("len = %d, want 2", s.Len())
	}
	// "a" must have survived (3 loads total: a, b, c; a re-Get hits).
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if got := cl.calls.Load(); got != 3 {
		t.Errorf("loader calls = %d, want 3 (a survived, b evicted)", got)
	}
	// "b" was evicted: next Get reloads.
	if _, err := s.Get("b"); err != nil {
		t.Fatal(err)
	}
	if got := cl.calls.Load(); got != 4 {
		t.Errorf("loader calls = %d, want 4 after evicted reload", got)
	}
	st = s.Stats()
	if st.Hits < 3 || st.Misses != st.Loads {
		t.Errorf("stats off: %+v", st)
	}
	if st.Bytes <= 0 || st.Profiles != 2 {
		t.Errorf("sizing off: %+v", st)
	}
}

// TestProfileStoreSharedColdKey is the acceptance test for the
// singleflight + shared-immutable contract: a 64-goroutine storm of
// Gets for one cold key triggers exactly one loader call, and every
// caller receives the same instance with the same fingerprint. Run
// under -race this also proves the flight handoff is properly
// synchronized.
func TestProfileStoreSharedColdKey(t *testing.T) {
	const storm = 64
	cl := &countingLoader{t: t}
	s := New(Config{Capacity: 8, Loader: cl, Metrics: obs.NewRegistry()})

	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
		got   [storm]*core.Profile
		fps   [storm]uint64
		errs  [storm]error
	)
	start.Add(storm)
	done.Add(storm)
	for i := 0; i < storm; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			<-gate
			p, fp, err := s.Resolve("driver-7")
			got[i], fps[i], errs[i] = p, fp, err
		}(i)
	}
	start.Wait()
	close(gate)
	done.Wait()

	for i := 0; i < storm; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if got[i] == nil {
			t.Fatalf("goroutine %d: nil profile", i)
		}
		if got[i] != got[0] {
			t.Fatalf("goroutine %d received a different instance", i)
		}
		if fps[i] != fps[0] {
			t.Fatalf("goroutine %d received fingerprint %016x, want %016x", i, fps[i], fps[0])
		}
	}
	if calls := cl.calls.Load(); calls != 1 {
		t.Errorf("loader calls = %d, want exactly 1 for one cold key", calls)
	}
	if fps[0] != got[0].Fingerprint() {
		t.Error("cached fingerprint disagrees with recompute")
	}
	st := s.Stats()
	if st.Loads != 1 {
		t.Errorf("Stats.Loads = %d, want 1", st.Loads)
	}
	if st.Hits+st.Misses != storm {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, storm)
	}
}

// TestStoreConcurrentMixedKeys hammers many keys from many goroutines
// with a capacity small enough to force constant eviction — the
// -race workout for the LRU list and flight table.
func TestStoreConcurrentMixedKeys(t *testing.T) {
	cl := &countingLoader{t: t}
	s := New(Config{Shards: 4, Capacity: 8, Loader: cl})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("driver-%d", (g+i)%24)
				p, err := s.Get(key)
				if err != nil || p == nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 8 {
		t.Errorf("len = %d exceeds capacity", s.Len())
	}
}

func TestLoadErrorsPropagateAndAreNotCached(t *testing.T) {
	boom := errors.New("disk on fire")
	cl := &countingLoader{t: t, fail: map[string]error{"bad": boom}}
	s := New(Config{Loader: cl})
	if _, err := s.Get("bad"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped loader error", err)
	}
	// The failure is not negative-cached: a later Get retries the
	// loader (which now succeeds).
	delete(cl.fail, "bad")
	if _, err := s.Get("bad"); err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if calls := cl.calls.Load(); calls != 2 {
		t.Errorf("loader calls = %d, want 2 (fail, then retry)", calls)
	}
	if st := s.Stats(); st.LoadErrors != 1 {
		t.Errorf("LoadErrors = %d, want 1", st.LoadErrors)
	}
}

func TestStoreWithoutLoader(t *testing.T) {
	s := New(Config{})
	if _, err := s.Get("x"); !errors.Is(err, ErrNoLoader) {
		t.Errorf("err = %v, want ErrNoLoader", err)
	}
	p := synthProfile(t, 1, 0)
	if err := s.Put("x", p); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("x")
	if err != nil || got != p {
		t.Fatalf("Put/Get = %v, %v (want the published instance)", got, err)
	}
	if !s.Invalidate("x") {
		t.Error("Invalidate missed a present key")
	}
	if s.Invalidate("x") {
		t.Error("Invalidate reported a dropped key as present")
	}
	if _, err := s.Get(""); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty key err = %v", err)
	}
}

// TestEvictionLeavesOpenSessionsIntact pins the lifetime rule: an
// evicted profile stays fully usable by holders; only the store's
// reference is dropped.
func TestEvictionLeavesOpenSessionsIntact(t *testing.T) {
	cl := &countingLoader{t: t}
	s := New(Config{Shards: 1, Capacity: 1, Loader: cl})
	held, err := s.Get("held")
	if err != nil {
		t.Fatal(err)
	}
	fp := held.Fingerprint()
	if _, err := s.Get("evictor"); err != nil { // capacity 1: evicts "held"
		t.Fatal(err)
	}
	if s.Stats().Evictions != 1 {
		t.Fatalf("eviction did not happen: %+v", s.Stats())
	}
	// The held instance still tracks and still fingerprints the same.
	if held.Fingerprint() != fp {
		t.Error("evicted profile changed under the holder")
	}
	if _, err := core.NewTracker(held, core.DefaultConfig()); err != nil {
		t.Errorf("evicted profile rejected by tracker: %v", err)
	}
}

func TestStoreMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	cl := &countingLoader{t: t}
	s := New(Config{Capacity: 1, Shards: 1, Loader: cl, Metrics: reg})
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b"); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		`vihot_profilestore_hits_total{policy="lru"} 1`,
		`vihot_profilestore_misses_total{policy="lru"} 2`,
		`vihot_profilestore_evictions_total{policy="lru"} 1`,
		`vihot_profilestore_loads_total{policy="lru"} 2`,
		`vihot_profilestore_load_errors_total{policy="lru"} 0`,
		`vihot_profilestore_admission_rejected_total{policy="lru"} 0`,
		`vihot_profilestore_doorkeeper_admits_total{policy="lru"} 0`,
		`vihot_profilestore_bytes{policy="lru"}`,
		`vihot_profilestore_profiles{policy="lru"} 1`,
		`vihot_profilestore_load_seconds_count{policy="lru"} 2`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	// Two policies share one registry without colliding: the label
	// keeps the series distinct.
	s2 := New(Config{Capacity: 1, Shards: 1, Policy: Policy2Q, Loader: cl, Metrics: reg})
	if _, err := s2.Get("a"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `vihot_profilestore_loads_total{policy="2q"} 1`) {
		t.Error("exposition missing the 2q-labelled series")
	}
}

func TestDirLoader(t *testing.T) {
	dir := t.TempDir()
	dl := NewDirLoader(dir)
	p := synthProfile(t, 2, 1)
	if err := dl.Save("alice", p); err != nil {
		t.Fatal(err)
	}
	got, err := dl.Load("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != p.Fingerprint() {
		t.Error("fingerprint changed across save/load")
	}
	if _, err := dl.Load("nobody"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing profile err = %v, want ErrNotFound", err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, "x\x00y"} {
		if _, err := dl.Load(bad); err == nil {
			t.Errorf("key %q accepted", bad)
		}
	}
	// A corrupt file surfaces the decode error, not a silent miss.
	if err := os.WriteFile(filepath.Join(dir, "mangled"+ProfileExt),
		[]byte("ViHP garbage after the magic"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dl.Load("mangled"); !errors.Is(err, core.ErrCorruptProfile) {
		t.Errorf("corrupt file err = %v, want ErrCorruptProfile", err)
	}
}

// TestDirLoaderOverwriteRoundTrip: re-profiling a driver replaces the
// file under the exact dl.Path-validated name — atomically, with no
// temp litter beside it — and the next Load sees the new profile.
func TestDirLoaderOverwriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dl := NewDirLoader(dir)
	p1 := synthProfile(t, 2, 7)
	p2 := synthProfile(t, 3, 8)

	if err := dl.Save("alice", p1); err != nil {
		t.Fatal(err)
	}
	path, err := dl.Path("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("saved profile not at dl.Path: %v", err)
	}
	if err := dl.Save("alice", p2); err != nil {
		t.Fatal(err)
	}
	got, err := dl.Load("alice")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != p2.Fingerprint() {
		t.Error("overwrite did not replace the profile")
	}
	// Straight from the validated path too, not just through Load.
	direct, err := core.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Fingerprint() != p2.Fingerprint() {
		t.Error("dl.Path file does not hold the overwritten profile")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "alice"+ProfileExt {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("directory not clean after overwrite: %v", names)
	}
}

// TestStoreThroughDirLoader is the end-to-end cold path: profiles on
// disk in both encodings resolve through one store.
func TestStoreThroughDirLoader(t *testing.T) {
	dir := t.TempDir()
	dl := NewDirLoader(dir)
	v1 := synthProfile(t, 2, 3)
	if err := dl.Save("modern", v1); err != nil {
		t.Fatal(err)
	}
	// A legacy-gob profile dropped into the same directory.
	legacy := synthProfile(t, 2, 4)
	lf, err := os.Create(filepath.Join(dir, "vintage"+ProfileExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeLegacyGob(lf, legacy); err != nil {
		t.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Loader: dl})
	for key, want := range map[string]uint64{
		"modern":  v1.Fingerprint(),
		"vintage": legacy.Fingerprint(),
	} {
		_, fp, err := s.Resolve(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if fp != want {
			t.Errorf("%s fingerprint = %016x, want %016x", key, fp, want)
		}
	}
}
