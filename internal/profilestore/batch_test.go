package profilestore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"vihot/internal/core"
)

// TestGetManyFleetOpen is the batch acceptance test: N session keys
// drawn from M distinct profiles cost exactly M loader calls, and
// duplicate keys share one instance.
func TestGetManyFleetOpen(t *testing.T) {
	const (
		sessions = 64
		distinct = 4
	)
	cl := &countingLoader{t: t}
	s := New(Config{Capacity: 16, Loader: cl})
	keys := make([]string, sessions)
	for i := range keys {
		keys[i] = fmt.Sprintf("style-%d", i%distinct)
	}
	ps, errs := s.GetMany(keys)
	if len(ps) != sessions || len(errs) != sessions {
		t.Fatalf("result lengths %d/%d, want %d", len(ps), len(errs), sessions)
	}
	for i := range keys {
		if errs[i] != nil {
			t.Fatalf("key %d (%s): %v", i, keys[i], errs[i])
		}
		if ps[i] == nil {
			t.Fatalf("key %d (%s): nil profile", i, keys[i])
		}
		if ps[i] != ps[i%distinct] {
			t.Errorf("key %d does not share its style's instance", i)
		}
	}
	if calls := cl.calls.Load(); calls != distinct {
		t.Errorf("loader calls = %d, want exactly %d", calls, distinct)
	}
	if st := s.Stats(); st.Loads != distinct || st.Misses != distinct {
		t.Errorf("stats: %+v, want %d loads/misses", st, distinct)
	}
}

// TestGetManyPerKeyErrors: one broken profile fails its own slot, not
// the batch.
func TestGetManyPerKeyErrors(t *testing.T) {
	boom := errors.New("disk on fire")
	cl := &countingLoader{t: t, fail: map[string]error{"bad": boom}}
	s := New(Config{Loader: cl})
	ps, errs := s.GetMany([]string{"good", "bad", "", "good", "bad"})
	if errs[0] != nil || ps[0] == nil {
		t.Errorf("good: %v", errs[0])
	}
	if !errors.Is(errs[1], boom) || ps[1] != nil {
		t.Errorf("bad err = %v", errs[1])
	}
	if !errors.Is(errs[2], ErrEmptyKey) {
		t.Errorf("empty key err = %v", errs[2])
	}
	if ps[3] != ps[0] || errs[3] != nil {
		t.Error("duplicate good key did not share the resolution")
	}
	if !errors.Is(errs[4], boom) {
		t.Errorf("duplicate bad key err = %v", errs[4])
	}
	if calls := cl.calls.Load(); calls != 2 {
		t.Errorf("loader calls = %d, want 2 (good once, bad once)", calls)
	}
	// Errors are not negative-cached, batch or not.
	delete(cl.fail, "bad")
	if _, errs := s.GetMany([]string{"bad"}); errs[0] != nil {
		t.Errorf("retry after transient failure: %v", errs[0])
	}
}

// TestGetManyWithoutLoader: cold keys fail per-slot with ErrNoLoader,
// cached keys still resolve.
func TestGetManyWithoutLoader(t *testing.T) {
	s := New(Config{})
	warm := synthProfile(t, 1, 3)
	if err := s.Put("warm", warm); err != nil {
		t.Fatal(err)
	}
	ps, errs := s.GetMany([]string{"warm", "cold"})
	if errs[0] != nil || ps[0] != warm {
		t.Errorf("warm: %v, %v", ps[0], errs[0])
	}
	if !errors.Is(errs[1], ErrNoLoader) {
		t.Errorf("cold err = %v, want ErrNoLoader", errs[1])
	}
}

// TestGetManyJoinsInflightGet: a batch overlapping a concurrent Get's
// in-flight load joins that flight instead of reloading.
func TestGetManyJoinsInflightGet(t *testing.T) {
	gl := newGatedLoader(t)
	s := New(Config{Loader: gl})

	var (
		single     *core.Profile
		singleDone = make(chan struct{})
	)
	go func() {
		defer close(singleDone)
		single, _ = s.Get("shared")
	}()
	<-gl.started // the Get owns the "shared" flight now

	var (
		ps        []*core.Profile
		errs      []error
		batchDone = make(chan struct{})
	)
	go func() {
		defer close(batchDone)
		ps, errs = s.GetMany([]string{"shared", "solo"})
	}()
	<-gl.started // the batch's own "solo" load started
	gl.release <- struct{}{}
	gl.release <- struct{}{}
	<-singleDone
	<-batchDone

	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("batch errors: %v", errs)
	}
	if ps[0] != single {
		t.Error("batch did not receive the in-flight Get's instance")
	}
	if n := gl.count("shared"); n != 1 {
		t.Errorf("shared loaded %d times, want 1", n)
	}
	if n := gl.count("solo"); n != 1 {
		t.Errorf("solo loaded %d times, want 1", n)
	}
}

// TestGetManyConcurrentBatches storms overlapping batches from many
// goroutines: still one load per distinct key, same instance
// everywhere — the cold-storm guarantee, batched. Run under -race.
func TestGetManyConcurrentBatches(t *testing.T) {
	const (
		batches  = 16
		distinct = 8
	)
	cl := &countingLoader{t: t}
	s := New(Config{Capacity: 32, Loader: cl})
	keys := make([]string, distinct*2)
	for i := range keys {
		keys[i] = fmt.Sprintf("style-%d", i%distinct)
	}

	var (
		wg   sync.WaitGroup
		gate = make(chan struct{})
	)
	results := make([][]*core.Profile, batches)
	wg.Add(batches)
	for b := 0; b < batches; b++ {
		go func(b int) {
			defer wg.Done()
			<-gate
			ps, errs := s.GetMany(keys)
			for i, err := range errs {
				if err != nil {
					t.Errorf("batch %d key %d: %v", b, i, err)
					return
				}
			}
			results[b] = ps
		}(b)
	}
	close(gate)
	wg.Wait()

	if calls := cl.calls.Load(); calls != distinct {
		t.Errorf("loader calls = %d, want %d across %d concurrent batches", calls, distinct, batches)
	}
	for b := 1; b < batches; b++ {
		for i := range keys {
			if results[b] == nil {
				break
			}
			if results[b][i] != results[0][i] {
				t.Fatalf("batch %d key %d got a different instance", b, i)
			}
		}
	}
}
