// Package profilestore resolves driver profiles by key (driver or
// cabin ID) through a sharded, policy-pluggable cache of immutable,
// fingerprinted *core.Profile instances — the profile lifecycle layer
// a fleet server needs between "millions of drivers on disk" and
// "thousands of open tracking sessions in RAM".
//
// # Sharing model
//
// The store hands out the cached *core.Profile itself, never a copy.
// That is safe because profiles are immutable once published (see the
// core.Profile contract): N sessions opened for one driver all track
// against one instance, and the cache costs one profile of memory per
// distinct driver, not per session. Eviction only drops the store's
// reference — sessions already holding the profile keep it alive (the
// GC, not the cache, owns lifetime), so evicting a hot driver can
// never invalidate an open session.
//
// # Eviction policies and admission
//
// Config.Policy selects the per-shard eviction strategy: LRU (the
// default, bit-identical to the store's original behavior), LFU
// (frequency buckets; a one-shot key can never displace a profile
// with hit history), or 2Q (FIFO probation plus a protected main
// queue; scans churn probation only). Config.Admission additionally
// arms a doorkeeper — a small recency sketch that refuses to cache a
// first-touch key while the shard is full, so churny fleet workloads
// (ride-share rider profiles, mixed cabins) cannot erode the hot set
// one insert at a time. See policy.go and admission.go.
//
// # Concurrency
//
// Keys hash onto independent shards (FNV-1a, like serve's session
// routing), each guarded by its own mutex, so unrelated drivers never
// contend. The hot hit path is one shard lock, one map probe, and an
// intrusive-list splice: zero allocations (proved by
// BenchmarkStoreHotHit). Cold keys dedupe loads singleflight-style:
// the first Get for a key starts the loader, concurrent Gets for the
// same key park on that flight's done channel, and all of them
// receive the one loaded instance — N racing opens cost one disk
// read, never N. GetMany extends the same dedup across a batch: a
// fleet open of N sessions over M distinct keys performs exactly M
// loader calls, cold loads overlapping.
//
// # Metrics
//
// With Config.Metrics set the store exports
// vihot_profilestore_{hits,misses,evictions,loads,load_errors,
// admission_rejected,doorkeeper_admits}_total, the
// vihot_profilestore_bytes / _profiles gauges, and a
// vihot_profilestore_load_seconds latency histogram — every series
// labelled policy="lru"|"lfu"|"2q" so policies can be compared on one
// dashboard. Without it the same counters back Stats() from a private
// registry.
package profilestore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vihot/internal/core"
	"vihot/internal/obs"
)

// Errors returned by the store.
var (
	// ErrNoLoader means the store was built without a Loader and a Get
	// missed the cache.
	ErrNoLoader = errors.New("profilestore: no loader configured")
	// ErrEmptyKey rejects "" as a profile key.
	ErrEmptyKey = errors.New("profilestore: empty profile key")
)

// Loader fetches the profile for a key on a cache miss. Load runs
// outside all shard locks and may be called concurrently for
// *different* keys; the store guarantees at most one in-flight Load
// per key. The returned profile is published as immutable and shared
// — a loader must hand over ownership, never retain and mutate it.
type Loader interface {
	Load(key string) (*core.Profile, error)
}

// LoaderFunc adapts a function to the Loader interface.
type LoaderFunc func(key string) (*core.Profile, error)

// Load implements Loader.
func (f LoaderFunc) Load(key string) (*core.Profile, error) { return f(key) }

// Config tunes a Store. The zero value of every field selects a
// default.
type Config struct {
	// Shards is the number of independent cache shards. Default 8.
	Shards int
	// Capacity is the maximum number of cached profiles across all
	// shards; when a shard exceeds its slice the policy's victim is
	// evicted. Default 256. Capacity is advisory per shard (each shard
	// holds up to ceil(Capacity/Shards) entries), so a pathological
	// key distribution can cap slightly below Capacity.
	Capacity int
	// Policy selects the eviction strategy: PolicyLRU (default,
	// behavior-identical to the pre-policy store), PolicyLFU, or
	// Policy2Q. See the Policy docs for when each wins.
	Policy Policy
	// Admission arms the doorkeeper: while a shard is full, the first
	// load of an unknown key is returned to the caller but not cached;
	// only a key touched twice within the sketch's memory may evict an
	// established profile. Put bypasses admission (an explicit publish
	// is its own decision), as does 2Q's ghost-queue second chance.
	Admission bool
	// Loader resolves cache misses. Optional: a store without one is a
	// pure cache fed by Put, and Get on a cold key fails ErrNoLoader.
	Loader Loader
	// Metrics, if set, registers the store's series there for
	// scraping. Stats() works either way.
	Metrics *obs.Registry
}

// entry is one cached profile plus its intrusive policy links.
// prev/next (and the per-policy fb/q fields) are only touched under
// the owning shard's lock.
type entry struct {
	key        string
	p          *core.Profile
	fp         uint64
	bytes      int64
	prev, next *entry
	fb         *freqBucket // LFU: owning frequency bucket
	q          uint8       // 2Q: which queue holds the entry
}

// flight is one in-progress load that concurrent Gets for the same
// key share. invalidated is guarded by the owning shard's mutex: an
// Invalidate racing the load marks it so the result is delivered to
// waiters but never cached.
type flight struct {
	done        chan struct{}
	p           *core.Profile
	fp          uint64
	err         error
	invalidated bool
}

// shard is an independent slice of the keyspace: a map for O(1)
// probes, the policy's intrusive bookkeeping, the in-flight load
// table, and (with Config.Admission) the doorkeeper sketch.
type shard struct {
	mu       sync.Mutex
	items    map[string]*entry
	pol      policy
	door     *doorkeeper
	capacity int
	inflight map[string]*flight
}

// Store is the concurrency-safe profile resolver. Build with New.
type Store struct {
	shards    []*shard
	loader    Loader
	admission bool
	policy    Policy

	hits        *obs.Counter
	misses      *obs.Counter
	evictions   *obs.Counter
	loads       *obs.Counter
	loadErrors  *obs.Counter
	admRejected *obs.Counter
	doorAdmits  *obs.Counter
	bytes       *obs.Gauge
	profiles    *obs.Gauge
	loadSec     *obs.Histogram
}

// New builds a Store.
func New(cfg Config) *Store {
	if cfg.Shards < 1 {
		cfg.Shards = 8
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 256
	}
	if cfg.Capacity < cfg.Shards {
		// Fewer slots than shards would zero some shards' capacity;
		// shrink the shard count instead so Capacity stays honest.
		cfg.Shards = cfg.Capacity
	}
	perShard := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	pl := []string{"policy", cfg.Policy.String()}
	s := &Store{
		loader:    cfg.Loader,
		admission: cfg.Admission,
		policy:    cfg.Policy,
		hits: reg.Counter("vihot_profilestore_hits_total",
			"profile lookups served from cache", pl...),
		misses: reg.Counter("vihot_profilestore_misses_total",
			"profile lookups that missed the cache", pl...),
		evictions: reg.Counter("vihot_profilestore_evictions_total",
			"profiles evicted by cache pressure", pl...),
		loads: reg.Counter("vihot_profilestore_loads_total",
			"loader invocations (deduplicated across concurrent misses)", pl...),
		loadErrors: reg.Counter("vihot_profilestore_load_errors_total",
			"loader invocations that failed", pl...),
		admRejected: reg.Counter("vihot_profilestore_admission_rejected_total",
			"loaded profiles returned to callers but refused caching by the doorkeeper", pl...),
		doorAdmits: reg.Counter("vihot_profilestore_doorkeeper_admits_total",
			"full-shard inserts admitted on a remembered second touch", pl...),
		bytes: reg.Gauge("vihot_profilestore_bytes",
			"approximate heap bytes of cached profile grids", pl...),
		profiles: reg.Gauge("vihot_profilestore_profiles",
			"profiles currently cached", pl...),
		loadSec: reg.Histogram("vihot_profilestore_load_seconds",
			"wall-clock latency of one loader invocation", obs.LatencyBuckets(), pl...),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			items:    make(map[string]*entry),
			pol:      newPolicy(cfg.Policy, perShard),
			capacity: perShard,
			inflight: make(map[string]*flight),
		}
		if cfg.Admission {
			sh.door = newDoorkeeper(perShard)
		}
		s.shards = append(s.shards, sh)
	}
	return s
}

// Policy reports the eviction policy the store was built with.
func (s *Store) Policy() Policy { return s.policy }

// shardFor routes a key to its shard (FNV-1a, allocation-free).
func (s *Store) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// profileBytes approximates a profile's heap footprint: the grids
// dominate, headers are noise.
func profileBytes(p *core.Profile) int64 {
	n := int64(16) // MatchRateHz + slice header, roughly
	for _, pos := range p.Positions {
		n += 32 + 8*int64(len(pos.PhiGrid)+len(pos.ThetaGrid))
	}
	return n
}

// Get resolves key to its profile: cache hit, joining an in-flight
// load, or a fresh loader call — whichever the moment requires. All
// concurrent callers for one cold key receive the same instance from
// one loader invocation.
func (s *Store) Get(key string) (*core.Profile, error) {
	p, _, err := s.Resolve(key)
	return p, err
}

// Resolve is Get plus the cached content fingerprint, saving the
// caller the O(grid) recompute when it wants to label a session with
// the profile generation it tracks against.
func (s *Store) Resolve(key string) (*core.Profile, uint64, error) {
	if key == "" {
		return nil, 0, ErrEmptyKey
	}
	p, fp, f, owned, err := s.acquire(key)
	if err != nil {
		return nil, 0, err
	}
	if f == nil {
		return p, fp, nil
	}
	if owned {
		s.runLoad(key, f)
	} else {
		// Someone else is loading this key: park on their flight.
		<-f.done
	}
	return f.p, f.fp, f.err
}

// acquire is the shared front half of Resolve and GetMany: under the
// shard lock it returns a cache hit, or the flight to wait on (owned
// = this caller must run the load), or the no-loader error.
func (s *Store) acquire(key string) (*core.Profile, uint64, *flight, bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		sh.pol.touched(e)
		// Capture under the lock: a concurrent Put may replace e's
		// instance the moment we release it.
		p, fp := e.p, e.fp
		sh.mu.Unlock()
		s.hits.Add(1)
		return p, fp, nil, false, nil
	}
	s.misses.Add(1)
	if f, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		return nil, 0, f, false, nil
	}
	if s.loader == nil {
		sh.mu.Unlock()
		return nil, 0, nil, false, fmt.Errorf("%w (key %q)", ErrNoLoader, key)
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.mu.Unlock()
	return nil, 0, f, true, nil
}

// runLoad executes the loader for an owned flight and publishes the
// result to the cache and every waiter. It runs outside the shard
// lock: a slow disk stalls only Gets for this key, and hits for other
// keys on the same shard proceed unhindered.
func (s *Store) runLoad(key string, f *flight) {
	start := time.Now()
	p, err := s.loader.Load(key)
	s.loadSec.Observe(time.Since(start).Seconds())
	s.loads.Add(1)
	if err == nil && p == nil {
		err = fmt.Errorf("profilestore: loader returned nil profile for key %q", key)
	}
	sh := s.shardFor(key)
	if err != nil {
		s.loadErrors.Add(1)
		f.err = fmt.Errorf("profilestore: load %q: %w", key, err)
		sh.mu.Lock()
		delete(sh.inflight, key) // errors are not cached: next Get retries
		sh.mu.Unlock()
		close(f.done)
		return
	}
	f.p, f.fp = p, p.Fingerprint()
	sh.mu.Lock()
	delete(sh.inflight, key)
	if !f.invalidated {
		// An Invalidate that raced this load wins: waiters get the
		// instance, but it is never cached — the next Get loads fresh.
		s.admitLocked(sh, key, f.p, f.fp)
	}
	sh.mu.Unlock()
	close(f.done)
}

// admitLocked is the loader-fill insert: the doorkeeper may refuse a
// first-touch key while the shard is full. Caller holds sh.mu.
func (s *Store) admitLocked(sh *shard, key string, p *core.Profile, fp uint64) {
	if s.admission {
		if _, resident := sh.items[key]; !resident && len(sh.items) >= sh.capacity {
			switch {
			case sh.pol.remembers(key):
				// 2Q ghost: the policy itself has second-touch proof.
				s.doorAdmits.Add(1)
			case sh.door.admit(key):
				s.doorAdmits.Add(1)
			default:
				s.admRejected.Add(1)
				return
			}
		}
	}
	s.insertLocked(sh, key, p, fp)
}

// Put publishes a profile under key, bypassing the loader — for
// warming a cache at startup or registering a freshly built profile.
// The store takes the instance as-is (no copy); the caller must treat
// it as immutable from this point on. An existing entry for key is
// replaced (sessions holding the old instance keep it). Put also
// bypasses the admission filter: an explicit publish (cluster
// replication, cache warming) is its own admission decision.
func (s *Store) Put(key string, p *core.Profile) error {
	if key == "" {
		return ErrEmptyKey
	}
	if p == nil || len(p.Positions) == 0 {
		return core.ErrEmptyProfile
	}
	fp := p.Fingerprint()
	sh := s.shardFor(key)
	sh.mu.Lock()
	s.insertLocked(sh, key, p, fp)
	sh.mu.Unlock()
	return nil
}

// insertLocked adds or replaces the entry for key and evicts down to
// capacity through the policy. Caller holds sh.mu.
func (s *Store) insertLocked(sh *shard, key string, p *core.Profile, fp uint64) {
	if e, ok := sh.items[key]; ok {
		s.bytes.Add(float64(-e.bytes))
		e.p, e.fp, e.bytes = p, fp, profileBytes(p)
		s.bytes.Add(float64(e.bytes))
		sh.pol.touched(e)
		return
	}
	e := &entry{key: key, p: p, fp: fp, bytes: profileBytes(p)}
	sh.items[key] = e
	sh.pol.admitted(e)
	s.bytes.Add(float64(e.bytes))
	s.profiles.Add(1)
	for len(sh.items) > sh.capacity {
		victim := sh.pol.evict()
		if victim == nil {
			break
		}
		delete(sh.items, victim.key)
		s.bytes.Add(float64(-victim.bytes))
		s.profiles.Add(-1)
		s.evictions.Add(1)
	}
}

// Invalidate drops key from the cache (a re-profiled driver, say) and
// reports whether a cached entry was present. Sessions already
// tracking against the dropped instance are unaffected; the next Get
// loads fresh. A load in flight for key is marked: its waiters still
// receive the instance they asked for, but the result is not cached,
// so the invalidation can never be undone by a racing load.
func (s *Store) Invalidate(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.inflight[key]; ok {
		f.invalidated = true
	}
	e, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.pol.removed(e)
	delete(sh.items, key)
	s.bytes.Add(float64(-e.bytes))
	s.profiles.Add(-1)
	return true
}

// Len returns the number of cached profiles.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Stats is one observation of the store's counters (see the Counters
// consistency note in internal/obs: monotone per field, not a
// consistent cut).
type Stats struct {
	Hits              uint64
	Misses            uint64
	Evictions         uint64
	Loads             uint64
	LoadErrors        uint64
	AdmissionRejected uint64 // loads refused caching by the doorkeeper
	DoorkeeperAdmits  uint64 // full-shard inserts admitted on second touch
	Bytes             int64  // approximate cached grid bytes
	Profiles          int    // cached profile count
}

// HitRate is hits/(hits+misses), 0 when no lookups happened.
func (st Stats) HitRate() float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// Stats returns the current counter values.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:              s.hits.Value(),
		Misses:            s.misses.Value(),
		Evictions:         s.evictions.Value(),
		Loads:             s.loads.Value(),
		LoadErrors:        s.loadErrors.Value(),
		AdmissionRejected: s.admRejected.Value(),
		DoorkeeperAdmits:  s.doorAdmits.Value(),
		Bytes:             int64(s.bytes.Value()),
		Profiles:          int(s.profiles.Value()),
	}
}
