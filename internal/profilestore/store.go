// Package profilestore resolves driver profiles by key (driver or
// cabin ID) through a sharded LRU cache of immutable, fingerprinted
// *core.Profile instances — the profile lifecycle layer a fleet
// server needs between "millions of drivers on disk" and "thousands
// of open tracking sessions in RAM".
//
// # Sharing model
//
// The store hands out the cached *core.Profile itself, never a copy.
// That is safe because profiles are immutable once published (see the
// core.Profile contract): N sessions opened for one driver all track
// against one instance, and the cache costs one profile of memory per
// distinct driver, not per session. Eviction only drops the store's
// reference — sessions already holding the profile keep it alive (the
// GC, not the cache, owns lifetime), so evicting a hot driver can
// never invalidate an open session.
//
// # Concurrency
//
// Keys hash onto independent shards (FNV-1a, like serve's session
// routing), each guarded by its own mutex, so unrelated drivers never
// contend. The hot hit path is one shard lock, one map probe, and an
// intrusive-list splice: zero allocations (proved by
// BenchmarkStoreHotHit). Cold keys dedupe loads singleflight-style:
// the first Get for a key starts the loader, concurrent Gets for the
// same key park on that flight's done channel, and all of them
// receive the one loaded instance — N racing opens cost one disk
// read, never N.
//
// # Metrics
//
// With Config.Metrics set the store exports
// vihot_profilestore_{hits,misses,evictions,loads,load_errors}_total,
// the vihot_profilestore_bytes / _profiles gauges, and a
// vihot_profilestore_load_seconds latency histogram. Without it the
// same counters back Stats() from a private registry.
package profilestore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vihot/internal/core"
	"vihot/internal/obs"
)

// Errors returned by the store.
var (
	// ErrNoLoader means the store was built without a Loader and a Get
	// missed the cache.
	ErrNoLoader = errors.New("profilestore: no loader configured")
	// ErrEmptyKey rejects "" as a profile key.
	ErrEmptyKey = errors.New("profilestore: empty profile key")
)

// Loader fetches the profile for a key on a cache miss. Load runs
// outside all shard locks and may be called concurrently for
// *different* keys; the store guarantees at most one in-flight Load
// per key. The returned profile is published as immutable and shared
// — a loader must hand over ownership, never retain and mutate it.
type Loader interface {
	Load(key string) (*core.Profile, error)
}

// LoaderFunc adapts a function to the Loader interface.
type LoaderFunc func(key string) (*core.Profile, error)

// Load implements Loader.
func (f LoaderFunc) Load(key string) (*core.Profile, error) { return f(key) }

// Config tunes a Store. The zero value of every field selects a
// default.
type Config struct {
	// Shards is the number of independent cache shards. Default 8.
	Shards int
	// Capacity is the maximum number of cached profiles across all
	// shards; when a shard exceeds its slice the least-recently-used
	// entry is evicted. Default 256. Capacity is advisory per shard
	// (each shard holds up to ceil(Capacity/Shards) entries), so a
	// pathological key distribution can cap slightly below Capacity.
	Capacity int
	// Loader resolves cache misses. Optional: a store without one is a
	// pure cache fed by Put, and Get on a cold key fails ErrNoLoader.
	Loader Loader
	// Metrics, if set, registers the store's series there for
	// scraping. Stats() works either way.
	Metrics *obs.Registry
}

// entry is one cached profile plus its intrusive LRU links.
// prev/next are only touched under the owning shard's lock.
type entry struct {
	key        string
	p          *core.Profile
	fp         uint64
	bytes      int64
	prev, next *entry
}

// flight is one in-progress load that concurrent Gets for the same
// key share.
type flight struct {
	done chan struct{}
	p    *core.Profile
	fp   uint64
	err  error
}

// shard is an independent slice of the keyspace: a map for O(1)
// probes, an intrusive doubly-linked LRU list (head = most recent),
// and the in-flight load table.
type shard struct {
	mu       sync.Mutex
	items    map[string]*entry
	head     *entry
	tail     *entry
	capacity int
	inflight map[string]*flight
}

// Store is the concurrency-safe profile resolver. Build with New.
type Store struct {
	shards []*shard
	loader Loader

	hits       *obs.Counter
	misses     *obs.Counter
	evictions  *obs.Counter
	loads      *obs.Counter
	loadErrors *obs.Counter
	bytes      *obs.Gauge
	profiles   *obs.Gauge
	loadSec    *obs.Histogram
}

// New builds a Store.
func New(cfg Config) *Store {
	if cfg.Shards < 1 {
		cfg.Shards = 8
	}
	if cfg.Capacity < 1 {
		cfg.Capacity = 256
	}
	if cfg.Capacity < cfg.Shards {
		// Fewer slots than shards would zero some shards' capacity;
		// shrink the shard count instead so Capacity stays honest.
		cfg.Shards = cfg.Capacity
	}
	perShard := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Store{
		loader: cfg.Loader,
		hits: reg.Counter("vihot_profilestore_hits_total",
			"profile lookups served from cache"),
		misses: reg.Counter("vihot_profilestore_misses_total",
			"profile lookups that missed the cache"),
		evictions: reg.Counter("vihot_profilestore_evictions_total",
			"profiles evicted by LRU pressure"),
		loads: reg.Counter("vihot_profilestore_loads_total",
			"loader invocations (deduplicated across concurrent misses)"),
		loadErrors: reg.Counter("vihot_profilestore_load_errors_total",
			"loader invocations that failed"),
		bytes: reg.Gauge("vihot_profilestore_bytes",
			"approximate heap bytes of cached profile grids"),
		profiles: reg.Gauge("vihot_profilestore_profiles",
			"profiles currently cached"),
		loadSec: reg.Histogram("vihot_profilestore_load_seconds",
			"wall-clock latency of one loader invocation", obs.LatencyBuckets()),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			items:    make(map[string]*entry),
			capacity: perShard,
			inflight: make(map[string]*flight),
		})
	}
	return s
}

// shardFor routes a key to its shard (FNV-1a, allocation-free).
func (s *Store) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// moveToFront splices e to the head of the LRU list. Caller holds
// sh.mu.
func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds sh.mu.
func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if sh.head == e {
		sh.head = e.next
	}
	if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// profileBytes approximates a profile's heap footprint: the grids
// dominate, headers are noise.
func profileBytes(p *core.Profile) int64 {
	n := int64(16) // MatchRateHz + slice header, roughly
	for _, pos := range p.Positions {
		n += 32 + 8*int64(len(pos.PhiGrid)+len(pos.ThetaGrid))
	}
	return n
}

// Get resolves key to its profile: cache hit, joining an in-flight
// load, or a fresh loader call — whichever the moment requires. All
// concurrent callers for one cold key receive the same instance from
// one loader invocation.
func (s *Store) Get(key string) (*core.Profile, error) {
	p, _, err := s.Resolve(key)
	return p, err
}

// Resolve is Get plus the cached content fingerprint, saving the
// caller the O(grid) recompute when it wants to label a session with
// the profile generation it tracks against.
func (s *Store) Resolve(key string) (*core.Profile, uint64, error) {
	if key == "" {
		return nil, 0, ErrEmptyKey
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		sh.moveToFront(e)
		// Capture under the lock: a concurrent Put may replace e's
		// instance the moment we release it.
		p, fp := e.p, e.fp
		sh.mu.Unlock()
		s.hits.Add(1)
		return p, fp, nil
	}
	s.misses.Add(1)
	if f, ok := sh.inflight[key]; ok {
		// Someone is already loading this key: park on their flight.
		sh.mu.Unlock()
		<-f.done
		return f.p, f.fp, f.err
	}
	if s.loader == nil {
		sh.mu.Unlock()
		return nil, 0, fmt.Errorf("%w (key %q)", ErrNoLoader, key)
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.mu.Unlock()

	// The load runs outside the shard lock: a slow disk stalls only
	// Gets for this key, and hits for other keys on the same shard
	// proceed unhindered.
	start := time.Now()
	p, err := s.loader.Load(key)
	s.loadSec.Observe(time.Since(start).Seconds())
	s.loads.Add(1)
	if err == nil && p == nil {
		err = fmt.Errorf("profilestore: loader returned nil profile for key %q", key)
	}
	if err != nil {
		s.loadErrors.Add(1)
		f.err = fmt.Errorf("profilestore: load %q: %w", key, err)
		sh.mu.Lock()
		delete(sh.inflight, key) // errors are not cached: next Get retries
		sh.mu.Unlock()
		close(f.done)
		return nil, 0, f.err
	}
	f.p, f.fp = p, p.Fingerprint()
	sh.mu.Lock()
	delete(sh.inflight, key)
	s.insertLocked(sh, key, f.p, f.fp)
	sh.mu.Unlock()
	close(f.done)
	return f.p, f.fp, nil
}

// Put publishes a profile under key, bypassing the loader — for
// warming a cache at startup or registering a freshly built profile.
// The store takes the instance as-is (no copy); the caller must treat
// it as immutable from this point on. An existing entry for key is
// replaced (sessions holding the old instance keep it).
func (s *Store) Put(key string, p *core.Profile) error {
	if key == "" {
		return ErrEmptyKey
	}
	if p == nil || len(p.Positions) == 0 {
		return core.ErrEmptyProfile
	}
	fp := p.Fingerprint()
	sh := s.shardFor(key)
	sh.mu.Lock()
	s.insertLocked(sh, key, p, fp)
	sh.mu.Unlock()
	return nil
}

// insertLocked adds or replaces the entry for key and evicts down to
// capacity. Caller holds sh.mu.
func (s *Store) insertLocked(sh *shard, key string, p *core.Profile, fp uint64) {
	if e, ok := sh.items[key]; ok {
		s.bytes.Add(float64(-e.bytes))
		e.p, e.fp, e.bytes = p, fp, profileBytes(p)
		s.bytes.Add(float64(e.bytes))
		sh.moveToFront(e)
		return
	}
	e := &entry{key: key, p: p, fp: fp, bytes: profileBytes(p)}
	sh.items[key] = e
	sh.moveToFront(e)
	s.bytes.Add(float64(e.bytes))
	s.profiles.Add(1)
	for len(sh.items) > sh.capacity && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.items, victim.key)
		s.bytes.Add(float64(-victim.bytes))
		s.profiles.Add(-1)
		s.evictions.Add(1)
	}
}

// Invalidate drops key from the cache (a re-profiled driver, say) and
// reports whether it was present. Sessions already tracking against
// the dropped instance are unaffected; the next Get loads fresh.
func (s *Store) Invalidate(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.unlink(e)
	delete(sh.items, key)
	s.bytes.Add(float64(-e.bytes))
	s.profiles.Add(-1)
	return true
}

// Len returns the number of cached profiles.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Stats is one observation of the store's counters (see the Counters
// consistency note in internal/obs: monotone per field, not a
// consistent cut).
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Loads      uint64
	LoadErrors uint64
	Bytes      int64 // approximate cached grid bytes
	Profiles   int   // cached profile count
}

// Stats returns the current counter values.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:       s.hits.Value(),
		Misses:     s.misses.Value(),
		Evictions:  s.evictions.Value(),
		Loads:      s.loads.Value(),
		LoadErrors: s.loadErrors.Value(),
		Bytes:      int64(s.bytes.Value()),
		Profiles:   int(s.profiles.Value()),
	}
}
