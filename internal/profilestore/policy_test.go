package profilestore

import (
	"fmt"
	"sync"
	"testing"

	"vihot/internal/core"
)

// allPolicies enumerates the policy matrix for shared subtests.
var allPolicies = []Policy{PolicyLRU, PolicyLFU, Policy2Q}

// seqLoader records the order keys were loaded in — the observable
// trace every eviction decision leaves behind (an evicted key's next
// Get must reload).
type seqLoader struct {
	t   testing.TB
	mu  sync.Mutex
	seq []string
}

func (sl *seqLoader) Load(key string) (*core.Profile, error) {
	sl.mu.Lock()
	sl.seq = append(sl.seq, key)
	sl.mu.Unlock()
	seed := 0.0
	for _, c := range key {
		seed += float64(c)
	}
	return synthProfile(sl.t, 2, seed), nil
}

// refLRU is an independent model of the pre-v2 store's exact
// semantics: hit = move to front, miss = load + insert front, evict
// tail past capacity; Put = insert/replace + move front; Invalidate =
// drop. Deliberately written as a dumb slice so it shares no code
// with the intrusive-list implementation it checks.
type refLRU struct {
	cap   int
	order []string // front = most recent
	seq   []string // predicted loader-call sequence
}

func (r *refLRU) find(key string) int {
	for i, k := range r.order {
		if k == key {
			return i
		}
	}
	return -1
}

func (r *refLRU) front(key string) {
	if i := r.find(key); i >= 0 {
		r.order = append(r.order[:i], r.order[i+1:]...)
	}
	r.order = append([]string{key}, r.order...)
}

func (r *refLRU) get(key string) {
	if r.find(key) >= 0 {
		r.front(key)
		return
	}
	r.seq = append(r.seq, key)
	r.front(key)
	for len(r.order) > r.cap {
		r.order = r.order[:len(r.order)-1]
	}
}

func (r *refLRU) put(key string) {
	r.front(key)
	for len(r.order) > r.cap {
		r.order = r.order[:len(r.order)-1]
	}
}

func (r *refLRU) invalidate(key string) {
	if i := r.find(key); i >= 0 {
		r.order = append(r.order[:i], r.order[i+1:]...)
	}
}

// TestLRUTraceMatchesReference pins Config.Policy's default to the
// pre-v2 store bit for bit: a seeded mixed Get/Put/Invalidate trace
// must produce exactly the loader-call sequence the reference model
// predicts — same misses, same victims, same order.
func TestLRUTraceMatchesReference(t *testing.T) {
	const (
		capacity = 6
		keyspace = 17
		ops      = 4000
	)
	sl := &seqLoader{t: t}
	s := New(Config{Shards: 1, Capacity: capacity, Loader: sl})
	ref := &refLRU{cap: capacity}

	rng := uint64(0x9e3779b97f4a7c15) // fixed seed: the trace is the test
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	put := synthProfile(t, 1, 42)
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("k%02d", next(keyspace))
		switch op := next(20); {
		case op < 17: // Get dominates, like production
			if _, err := s.Get(key); err != nil {
				t.Fatal(err)
			}
			ref.get(key)
		case op < 19:
			if err := s.Put(key, put); err != nil {
				t.Fatal(err)
			}
			ref.put(key)
		default:
			s.Invalidate(key)
			ref.invalidate(key)
		}
	}
	if len(sl.seq) != len(ref.seq) {
		t.Fatalf("loader calls = %d, reference predicts %d", len(sl.seq), len(ref.seq))
	}
	for i := range ref.seq {
		if sl.seq[i] != ref.seq[i] {
			t.Fatalf("load %d = %s, reference predicts %s (eviction order diverged)",
				i, sl.seq[i], ref.seq[i])
		}
	}
	if s.Len() != len(ref.order) {
		t.Errorf("len = %d, reference holds %d", s.Len(), len(ref.order))
	}
}

// TestLFUKeepsFrequentKeys: under LFU a profile with hit history
// survives churn that would evict it under LRU.
func TestLFUKeepsFrequentKeys(t *testing.T) {
	cl := &countingLoader{t: t}
	s := New(Config{Shards: 1, Capacity: 3, Policy: PolicyLFU, Loader: cl})

	for i := 0; i < 5; i++ {
		if _, err := s.Get("hot"); err != nil {
			t.Fatal(err)
		}
	}
	// Churn through one-shot keys: each insert evicts the
	// least-frequent entry, which is never "hot".
	for i := 0; i < 10; i++ {
		if _, err := s.Get(fmt.Sprintf("scan-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.calls.Load()
	if _, err := s.Get("hot"); err != nil {
		t.Fatal(err)
	}
	if cl.calls.Load() != before {
		t.Error("LFU evicted the frequent key during a one-shot scan")
	}
}

// TestLFUTieBreaksLeastRecent: equal use counts evict the
// least-recently-admitted first.
func TestLFUTieBreaksLeastRecent(t *testing.T) {
	cl := &countingLoader{t: t}
	s := New(Config{Shards: 1, Capacity: 3, Policy: PolicyLFU, Loader: cl})
	for _, k := range []string{"a", "b", "c"} { // all frequency 1
		if _, err := s.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("d"); err != nil { // evicts the oldest: "a"
		t.Fatal(err)
	}
	before := cl.calls.Load()
	for _, k := range []string{"b", "c"} {
		if _, err := s.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if cl.calls.Load() != before {
		t.Error("b or c reloaded: wrong tie-break victim")
	}
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if cl.calls.Load() != before+1 {
		t.Error("a was not the eviction victim")
	}
}

// TestTwoQScanResistance: a probation-only scan never disturbs the
// protected main queue, and a ghost hit promotes into it.
func TestTwoQScanResistance(t *testing.T) {
	cl := &countingLoader{t: t}
	// Capacity 4 on one shard: kin=1 (probation), kout=2 (ghosts).
	s := New(Config{Shards: 1, Capacity: 4, Policy: Policy2Q, Loader: cl})

	// Fill probation, then push "a" out of it (into the ghost queue).
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		if _, err := s.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	// "a" reloads — but its ghost promotes it straight to the
	// protected main queue.
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	aLoads := func() int64 { return cl.calls.Load() }
	base := aLoads()

	// A long one-shot scan: every eviction comes from probation
	// (in.n > kin whenever the cache is full), never from main.
	for i := 0; i < 32; i++ {
		if _, err := s.Get(fmt.Sprintf("scan-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if got := aLoads(); got != base+32 {
		t.Errorf("loads = %d, want %d: the scan reached the protected queue", got, base+32)
	}
}

// TestAdmissionDoorkeeper: with the filter armed and the shard full,
// a first-touch key is served but not cached; its second touch is
// admitted and only then may it evict.
func TestAdmissionDoorkeeper(t *testing.T) {
	cl := &countingLoader{t: t}
	s := New(Config{Shards: 1, Capacity: 2, Admission: true, Loader: cl})
	for _, k := range []string{"a", "b"} { // below capacity: admitted freely
		if _, err := s.Get(k); err != nil {
			t.Fatal(err)
		}
	}

	p, err := s.Get("c") // full shard, first touch: rejected
	if err != nil || p == nil {
		t.Fatalf("rejected load must still serve the caller: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d after rejected admission, want 2", s.Len())
	}
	st := s.Stats()
	if st.AdmissionRejected != 1 || st.Evictions != 0 {
		t.Fatalf("stats after first touch: %+v", st)
	}
	// The established profiles were not displaced.
	before := cl.calls.Load()
	for _, k := range []string{"a", "b"} {
		if _, err := s.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if cl.calls.Load() != before {
		t.Error("a or b reloaded: rejection still evicted")
	}

	if _, err := s.Get("c"); err != nil { // second touch: admitted
		t.Fatal(err)
	}
	st = s.Stats()
	if st.DoorkeeperAdmits != 1 || st.Evictions != 1 {
		t.Fatalf("stats after second touch: %+v", st)
	}
	before = cl.calls.Load()
	if _, err := s.Get("c"); err != nil {
		t.Fatal(err)
	}
	if cl.calls.Load() != before {
		t.Error("admitted key missed the cache")
	}
}

// TestAdmissionPutBypasses: Put is an explicit publish and never
// consults the doorkeeper — cluster replication depends on this.
func TestAdmissionPutBypasses(t *testing.T) {
	cl := &countingLoader{t: t}
	s := New(Config{Shards: 1, Capacity: 2, Admission: true, Loader: cl})
	for _, k := range []string{"a", "b"} {
		if _, err := s.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("pushed", synthProfile(t, 1, 9)); err != nil {
		t.Fatal(err)
	}
	before := cl.calls.Load()
	if _, err := s.Get("pushed"); err != nil {
		t.Fatal(err)
	}
	if cl.calls.Load() != before {
		t.Error("Put result missed the cache: admission filtered an explicit publish")
	}
}

// gatedLoader blocks each Load until released, so a test can hold a
// load in flight while it races other operations against it.
type gatedLoader struct {
	t       testing.TB
	started chan string
	release chan struct{}
	calls   map[string]int
	mu      sync.Mutex
}

func newGatedLoader(t testing.TB) *gatedLoader {
	return &gatedLoader{
		t:       t,
		started: make(chan string, 16),
		release: make(chan struct{}, 16),
		calls:   map[string]int{},
	}
}

func (gl *gatedLoader) Load(key string) (*core.Profile, error) {
	gl.mu.Lock()
	gl.calls[key]++
	gl.mu.Unlock()
	gl.started <- key
	<-gl.release
	return synthProfile(gl.t, 1, 1), nil
}

func (gl *gatedLoader) count(key string) int {
	gl.mu.Lock()
	defer gl.mu.Unlock()
	return gl.calls[key]
}

// TestInvalidateDuringLoad is the satellite race test: an Invalidate
// issued while the key's load is in flight must not be undone when
// the load lands — waiters get the instance, the cache does not.
// Exercised for every policy under -race (the profilestore package is
// in the race matrix).
func TestInvalidateDuringLoad(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			gl := newGatedLoader(t)
			s := New(Config{Shards: 1, Capacity: 4, Policy: pol, Loader: gl})

			var (
				got  *core.Profile
				gerr error
				done = make(chan struct{})
			)
			go func() {
				defer close(done)
				got, gerr = s.Get("stale")
			}()
			<-gl.started // the load is now in flight

			if s.Invalidate("stale") {
				t.Error("Invalidate reported a not-yet-cached key as present")
			}
			gl.release <- struct{}{}
			<-done
			if gerr != nil || got == nil {
				t.Fatalf("in-flight waiter: %v", gerr)
			}

			// The invalidated load must not have been cached: the next
			// Get goes back to the loader.
			redo := make(chan struct{})
			go func() {
				defer close(redo)
				if _, err := s.Get("stale"); err != nil {
					t.Errorf("reload after invalidate: %v", err)
				}
			}()
			<-gl.started
			gl.release <- struct{}{}
			<-redo
			if n := gl.count("stale"); n != 2 {
				t.Errorf("loader calls = %d, want 2: the invalidated load was resurrected", n)
			}
			if s.Len() != 1 {
				t.Errorf("len = %d, want 1 (only the post-invalidate load cached)", s.Len())
			}
		})
	}
}

// TestConcurrentInvalidateGetHammer drives Gets and Invalidates at
// one key from many goroutines — pure -race fodder for the flight
// marking, across the policy matrix.
func TestConcurrentInvalidateGetHammer(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			cl := &countingLoader{t: t}
			s := New(Config{Shards: 2, Capacity: 4, Policy: pol, Loader: cl})
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						key := fmt.Sprintf("k%d", i%3)
						if g%4 == 0 && i%7 == 0 {
							s.Invalidate(key)
							continue
						}
						if p, err := s.Get(key); err != nil || p == nil {
							t.Errorf("get %s: %v", key, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestPoliciesHonorCapacity runs the existing mixed-key hammer across
// the policy/admission matrix: whatever the strategy, the cache never
// exceeds capacity and every Get is served.
func TestPoliciesHonorCapacity(t *testing.T) {
	for _, pol := range allPolicies {
		for _, adm := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/admission=%v", pol, adm), func(t *testing.T) {
				cl := &countingLoader{t: t}
				s := New(Config{Shards: 4, Capacity: 8, Policy: pol, Admission: adm, Loader: cl})
				var wg sync.WaitGroup
				for g := 0; g < 16; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < 200; i++ {
							key := fmt.Sprintf("driver-%d", (g+i)%24)
							p, err := s.Get(key)
							if err != nil || p == nil {
								t.Errorf("get %s: %v", key, err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				if s.Len() > 8 {
					t.Errorf("len = %d exceeds capacity", s.Len())
				}
			})
		}
	}
}
