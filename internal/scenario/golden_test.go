package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"testing"
)

// The golden accuracy regression suite: the full corpus replayed
// deterministically, one session per scenario, with the resulting
// per-scenario summaries (median/p95 error, final health counts,
// traffic counters) committed to testdata. JSON float64 round-trips
// are bit-exact, so byte equality against the committed file IS
// bit-identity of every float — the same guard idiom as the
// experiment package's golden traces.
//
// Regenerate after an intentional pipeline change with:
//
//	go test ./internal/scenario -run TestGoldenScenarioAccuracy -update

var update = flag.Bool("update", false, "rewrite the golden scenario summaries")

const goldenPath = "testdata/golden_scenarios.json"

// corpusMix is the full corpus at equal weight, durations as
// committed.
func corpusMix() []MixEntry {
	var mix []MixEntry
	for _, c := range Corpus() {
		mix = append(mix, MixEntry{Config: c, Weight: 1})
	}
	return mix
}

// runCorpus replays the corpus deterministically and returns the
// marshaled report. encoding/json sorts map keys, so the bytes are a
// canonical form.
func runCorpus(t *testing.T, mix []MixEntry) []byte {
	t.Helper()
	rep, err := Generate(GeneratorConfig{
		Mix:           mix,
		Sessions:      len(mix),
		Deterministic: true,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return append(blob, '\n')
}

func TestGoldenScenarioAccuracy(t *testing.T) {
	got := runCorpus(t, corpusMix())
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden summaries (regenerate with -update): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Byte inequality means a real change; decode both sides to say
	// where, then fail with the precise bits.
	var gotRep, wantRep Report
	if err := json.Unmarshal(got, &gotRep); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &wantRep); err != nil {
		t.Fatalf("golden file does not decode (regenerate with -update): %v", err)
	}
	for i := range wantRep.Scenarios {
		if i >= len(gotRep.Scenarios) {
			break
		}
		g, w := gotRep.Scenarios[i], wantRep.Scenarios[i]
		for _, d := range []struct {
			field      string
			got, want  float64
		}{
			{"median_err_deg", g.MedianErrDeg, w.MedianErrDeg},
			{"p95_err_deg", g.P95ErrDeg, w.P95ErrDeg},
			{"max_err_deg", g.MaxErrDeg, w.MaxErrDeg},
		} {
			if math.Float64bits(d.got) != math.Float64bits(d.want) {
				t.Errorf("%s %s: got %v (bits %#016x) want %v (bits %#016x)",
					w.Scenario, d.field, d.got, math.Float64bits(d.got), d.want, math.Float64bits(d.want))
			}
		}
		if g.Estimates != w.Estimates || g.Items != w.Items {
			t.Errorf("%s: got %d estimates over %d items, want %d over %d",
				w.Scenario, g.Estimates, g.Items, w.Estimates, w.Items)
		}
		if fmt.Sprint(g.FinalHealth) != fmt.Sprint(w.FinalHealth) {
			t.Errorf("%s final health: got %v want %v", w.Scenario, g.FinalHealth, w.FinalHealth)
		}
	}
	t.Fatalf("golden scenario summaries drifted (see field diffs above; regenerate with -update if intentional)")
}

// TestGoldenScenarioDeterminism replays the full corpus twice in one
// process at reduced duration and requires bit-identical summaries —
// the determinism contract the golden file depends on, checked
// without trusting any committed state.
func TestGoldenScenarioDeterminism(t *testing.T) {
	short := corpusMix()
	for i := range short {
		short[i].Config.DurationS = 3
	}
	a := runCorpus(t, short)
	b := runCorpus(t, short)
	if !bytes.Equal(a, b) {
		t.Fatalf("two consecutive corpus runs of the same seeds disagree:\nrun1: %d bytes\nrun2: %d bytes", len(a), len(b))
	}
}
