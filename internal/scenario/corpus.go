package scenario

import "fmt"

// The committed corpus: the named scenarios the regression suite, the
// workload generator, and the chaos soak replay. Every config here is
// fully declarative — seeds fixed, schedules explicit — so each name
// is a reproducible artifact, not a description.
//
// Corpus names.
const (
	// Baseline is the paper's own workload: one driver, default cabin,
	// glance-and-steer trips on a clean channel.
	Baseline = "baseline"
	// MultiOccupant seats a moving front passenger with the phone laid
	// sideways, so passenger reflections are NOT suppressed by the
	// antenna null — the hard half of Sec. 5.3.4.
	MultiOccupant = "multi-occupant"
	// CarFiRider is rider localization in a ride-share car (CarFi,
	// PAPERS.md): which seat-lean position does the occupant hold.
	CarFiRider = "carfi-rider"
	// VRTracking is commodity-WiFi 3-D position tracking (Kotaru &
	// Katti, PAPERS.md): continuous 3-D head motion with free scanning.
	VRTracking = "vr-3d"
	// LongHaul is the drowsiness-pattern long-haul scan: monotony,
	// slow nods, microsleep droops, and a mid-trip CSI blackout the
	// camera must cover.
	LongHaul = "longhaul-drowsy"
)

// Durations are corpus-wide test-scale defaults; the generator can
// override per run (vihot-serve -seconds does exactly that).
const (
	corpusShortS = 10 // accuracy scenarios
	corpusLongS  = 16 // the long-haul scan, long enough for two droops
)

// corpusConfig builds one named corpus entry. Seeds are fixed per
// name so "the corpus" is one artifact, not a family.
func corpusConfig(name string) Config {
	switch name {
	case Baseline:
		return Config{
			Name: Baseline, Seed: 101, DurationS: corpusShortS,
			Occupants: 1, Driver: "A",
			Trajectories: []TrajectoryWeight{
				{Kind: TrajDrive, Weight: 3, Steering: true},
				{Kind: TrajSweep, Weight: 1},
			},
		}
	case MultiOccupant:
		return Config{
			Name: MultiOccupant, Seed: 202, DurationS: corpusShortS,
			Occupants: 2, PassengerMotion: true, Driver: "B",
			Cabin: Cabin{PhoneSideways: true},
			Trajectories: []TrajectoryWeight{
				{Kind: TrajDrive, Weight: 1, Steering: true},
			},
			Interference: InterfereWiFi,
		}
	case CarFiRider:
		return Config{
			Name: CarFiRider, Seed: 303, DurationS: corpusShortS,
			Occupants: 2, Driver: "C",
			Trajectories: []TrajectoryWeight{
				{Kind: TrajRider, Weight: 1},
			},
		}
	case VRTracking:
		return Config{
			Name: VRTracking, Seed: 404, DurationS: corpusShortS,
			Occupants: 1, Driver: "B",
			Cabin: Cabin{Layout: 3}, // ceiling antennas: the VR rig placement
			Trajectories: []TrajectoryWeight{
				{Kind: TrajPos3D, Weight: 1},
			},
			Profile: ProfileSpec{Positions: 6},
		}
	case LongHaul:
		return Config{
			Name: LongHaul, Seed: 505, DurationS: corpusLongS,
			Occupants: 1, Driver: "A", Camera: true,
			Trajectories: []TrajectoryWeight{
				{Kind: TrajDrowsy, Weight: 3},
				{Kind: TrajDrive, Weight: 1},
			},
			Faults: []FaultSpec{
				{Kind: FaultCSIBlackout, Start: 7, End: 8.2},
				{Kind: FaultClockJitter, Level: 0.0004},
			},
		}
	}
	return Config{}
}

// CorpusNames lists the corpus in its canonical report order.
func CorpusNames() []string {
	return []string{Baseline, MultiOccupant, CarFiRider, VRTracking, LongHaul}
}

// Corpus returns the full committed corpus, validated.
func Corpus() []Config {
	names := CorpusNames()
	out := make([]Config, 0, len(names))
	for _, n := range names {
		c := corpusConfig(n)
		if err := c.Validate(); err != nil {
			// The corpus is committed code; an invalid entry is a bug,
			// and the corpus tests assert exactly this never fires.
			panic(err)
		}
		out = append(out, c)
	}
	return out
}

// ByName resolves one corpus scenario.
func ByName(name string) (Config, error) {
	c := corpusConfig(name)
	if c.Name == "" {
		return Config{}, fmt.Errorf("scenario: unknown corpus scenario %q (have %v)", name, CorpusNames())
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
