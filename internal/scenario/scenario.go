// Package scenario is the declarative workload layer over the
// simulator substrate: a Config names everything a reproducible
// end-to-end run needs — cabin geometry, occupants, the subject's
// trajectory mix, interference level, a fault schedule, duration, and
// a seed — and the package composes the existing cabin/driver/csi/
// wifi/camera pieces plus internal/faults into deterministic
// serve.Item streams with ground truth attached.
//
// The committed corpus (see corpus.go) turns "handles many scenarios"
// into a replayable artifact: every named scenario is fully determined
// by its config, so the same corpus doubles as the end-to-end accuracy
// regression suite (the golden summaries in testdata/) and as the
// workload generator behind vihot-bench -scenarios and vihot-serve
// -scenario-mix (see generator.go).
//
// # Determinism contract
//
// Everything downstream of a (Config, session index) pair is
// deterministic: the cabin environment, the trajectory draw, the CSI
// arrival times, the fault schedule, and therefore the exact item
// stream a session replays. Two runs of the same config at the same
// session count produce bit-identical streams — and, pushed through a
// deterministic serve.Manager, bit-identical estimates and summaries.
// DESIGN.md §12 records the seed-derivation tree.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"vihot/internal/cabin"
	"vihot/internal/driver"
	"vihot/internal/faults"
)

// Trajectory kinds a Config may mix. Each names one motion family the
// substrate can synthesize for the tracked subject.
const (
	// TrajDrive is the paper's run-time workload: road-facing with
	// mirror glances and optional steering events.
	TrajDrive = "drive"
	// TrajSweep is the controlled accuracy test: continuous left-right
	// head scanning at the profile's turn speed.
	TrajSweep = "sweep"
	// TrajDrowsy is the long-haul monotony scan: long still stretches,
	// slow nods, and microsleep head droops.
	TrajDrowsy = "drowsy"
	// TrajPos3D is the VR-style workload (Kotaru & Katti): continuous
	// 3-D head-position waypoints with free yaw/pitch scanning.
	TrajPos3D = "pos3d"
	// TrajRider is the CarFi-style rider-localization workload: an
	// occupant shifting between discrete seat-lean positions, mostly
	// still between shifts.
	TrajRider = "rider"
	// TrajSteerOnly is the Fig. 8 interference segment: hands sweep the
	// wheel while the head holds still.
	TrajSteerOnly = "steering-only"
	// TrajStill keeps the subject front-facing and motionless — the
	// noise-floor control.
	TrajStill = "still"
)

// trajectoryKinds indexes the valid trajectory kinds.
var trajectoryKinds = map[string]bool{
	TrajDrive: true, TrajSweep: true, TrajDrowsy: true,
	TrajPos3D: true, TrajRider: true, TrajSteerOnly: true, TrajStill: true,
}

// Fault kinds a Config's schedule may name. Window kinds need
// [Start, End); rate kinds need Level.
const (
	FaultCSIBlackout    = "csi-blackout"    // window: no CSI item arrives
	FaultIMUOutage      = "imu-outage"      // window: IMU readings dropped
	FaultCameraOutage   = "camera-outage"   // window: camera estimates dropped
	FaultBurstNoise     = "burst-noise"     // window: CSI gains complex noise (Level = std, default 0.5)
	FaultAntennaDropout = "antenna-dropout" // window: one RX chain zeroed
	FaultClockJitter    = "clock-jitter"    // rate: Level = timestamp jitter std (s)
	FaultClockRegress   = "clock-regress"   // rate: Level = backwards-timestamp probability
	FaultClockDup       = "clock-dup"       // rate: Level = duplicate-delivery probability
	FaultPacketLoss     = "packet-loss"     // rate: Level = datagram loss probability
	FaultPacketDup      = "packet-dup"      // rate: Level = datagram duplication probability
	FaultPacketReorder  = "packet-reorder"  // rate: Level = datagram reordering probability
	FaultPacketCorrupt  = "packet-corrupt"  // rate: Level = datagram bit-corruption probability
)

// faultKindWindowed reports, per valid kind, whether it takes a
// [Start, End) window (true) or a Level rate (false).
var faultKindWindowed = map[string]bool{
	FaultCSIBlackout: true, FaultIMUOutage: true, FaultCameraOutage: true,
	FaultBurstNoise: true, FaultAntennaDropout: true,
	FaultClockJitter: false, FaultClockRegress: false, FaultClockDup: false,
	FaultPacketLoss: false, FaultPacketDup: false, FaultPacketReorder: false,
	FaultPacketCorrupt: false,
}

// Interference levels.
const (
	InterfereNone = ""     // clean channel, paper's default timing
	InterfereWiFi = "wifi" // busy neighbor AP sharing the channel
)

// Cabin is the declarative cabin geometry: which of the five evaluated
// RX layouts, where the phone sits, and whether the mount vibrates.
type Cabin struct {
	// Layout selects the RX antenna placement, 1–5 (Sec. 5.2.2).
	// 0 means Layout 1, the paper's recommended placement.
	Layout int `json:"layout,omitempty"`
	// Phone overrides the dashboard phone-mount position in cabin
	// coordinates (meters). All-zero keeps the default mount.
	Phone [3]float64 `json:"phone,omitempty"`
	// PhoneSideways lays the phone down so its antenna null no longer
	// suppresses passenger reflections (Sec. 3.5 inverted).
	PhoneSideways bool `json:"phone_sideways,omitempty"`
	// Vibration enables worst-case coil-antenna shake.
	Vibration bool `json:"vibration,omitempty"`
}

// TrajectoryWeight is one entry of a Config's trajectory mix. Sessions
// draw their trajectory from the mix proportionally to Weight.
type TrajectoryWeight struct {
	Kind   string  `json:"kind"`
	Weight float64 `json:"weight"`
	// Steering enables intersection-turn steering events (TrajDrive).
	Steering bool `json:"steering,omitempty"`
	// SpeedDPS overrides the head-turn speed (TrajSweep); 0 keeps the
	// driver profile's habit.
	SpeedDPS float64 `json:"speed_dps,omitempty"`
}

// FaultSpec is one named fault in a Config's schedule. Window kinds
// use [Start, End) in stream seconds; rate kinds use Level.
type FaultSpec struct {
	Kind  string  `json:"kind"`
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
	Level float64 `json:"level,omitempty"`
}

// ProfileSpec sizes the profiling session run before tracking.
// Zero values take the corpus defaults (5 positions × 4 s — reduced
// from the paper's 10×8 so a corpus run profiles in seconds).
type ProfileSpec struct {
	Positions    int     `json:"positions,omitempty"`
	PerPositionS float64 `json:"per_position_s,omitempty"`
}

// Config declares one named scenario. The zero value is invalid; use
// the corpus constructors or fill every required field and Validate.
type Config struct {
	// Name identifies the scenario in reports, metrics, and goldens.
	Name string `json:"name"`
	// Seed determines everything: cabin hardware noise, trajectory
	// draws, arrival times, fault schedules. Required (zero is
	// rejected so a forgotten seed can't silently alias two runs).
	Seed int64 `json:"seed"`
	// DurationS is the tracked stream length in seconds.
	DurationS float64 `json:"duration_s"`
	// Cabin is the geometry; the zero value is the paper's default.
	Cabin Cabin `json:"cabin,omitempty"`
	// Occupants counts people in the cabin: 1 = subject alone,
	// 2 = front passenger too. Zero occupants is rejected — an empty
	// cabin has no head to track.
	Occupants int `json:"occupants"`
	// PassengerMotion makes the passenger glance sideways now and then
	// (Sec. 5.3.4's interference source). Requires Occupants ≥ 2.
	PassengerMotion bool `json:"passenger_motion,omitempty"`
	// Driver selects the subject's driver style: "A", "B", or "C"
	// (Sec. 5.2.5). Empty means "A".
	Driver string `json:"driver,omitempty"`
	// Trajectories is the weighted trajectory mix sessions draw from.
	// At least one entry with positive weight is required.
	Trajectories []TrajectoryWeight `json:"trajectories"`
	// Interference selects the channel condition: "" (clean) or "wifi"
	// (busy neighbor AP).
	Interference string `json:"interference,omitempty"`
	// Faults is the deterministic fault schedule applied to every
	// session's stream.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Camera includes the fallback camera feed in the stream, giving
	// the health machine something to coast on during CSI faults.
	Camera bool `json:"camera,omitempty"`
	// Profile sizes the profiling session.
	Profile ProfileSpec `json:"profile,omitempty"`
}

// finite reports whether v is a usable number (not NaN or ±Inf).
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks the config against the schema above. It returns the
// first violation found; a nil error means the config composes into a
// runnable scenario.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: config needs a name")
	}
	if c.Seed == 0 {
		return fmt.Errorf("scenario %q: seed must be non-zero", c.Name)
	}
	if !finite(c.DurationS) || c.DurationS <= 0 {
		return fmt.Errorf("scenario %q: duration %v is not a positive finite number of seconds", c.Name, c.DurationS)
	}
	if c.Cabin.Layout < 0 || c.Cabin.Layout > 5 {
		return fmt.Errorf("scenario %q: cabin layout %d outside 1–5 (0 = default)", c.Name, c.Cabin.Layout)
	}
	for _, v := range c.Cabin.Phone {
		if !finite(v) {
			return fmt.Errorf("scenario %q: non-finite phone position %v", c.Name, c.Cabin.Phone)
		}
	}
	if c.Occupants < 1 {
		return fmt.Errorf("scenario %q: %d occupants — an empty cabin has no head to track", c.Name, c.Occupants)
	}
	if c.Occupants > 2 {
		return fmt.Errorf("scenario %q: %d occupants — the substrate models at most driver + front passenger", c.Name, c.Occupants)
	}
	if c.PassengerMotion && c.Occupants < 2 {
		return fmt.Errorf("scenario %q: passenger motion needs a passenger (occupants ≥ 2)", c.Name)
	}
	switch c.Driver {
	case "", "A", "B", "C":
	default:
		return fmt.Errorf("scenario %q: unknown driver style %q (want A, B, or C)", c.Name, c.Driver)
	}
	if len(c.Trajectories) == 0 {
		return fmt.Errorf("scenario %q: empty trajectory mix", c.Name)
	}
	total := 0.0
	for i, tw := range c.Trajectories {
		if !trajectoryKinds[tw.Kind] {
			return fmt.Errorf("scenario %q: trajectory %d has unknown kind %q", c.Name, i, tw.Kind)
		}
		if !finite(tw.Weight) || tw.Weight <= 0 {
			return fmt.Errorf("scenario %q: trajectory %q weight %v is not positive and finite", c.Name, tw.Kind, tw.Weight)
		}
		if !finite(tw.SpeedDPS) || tw.SpeedDPS < 0 {
			return fmt.Errorf("scenario %q: trajectory %q speed %v deg/s is invalid", c.Name, tw.Kind, tw.SpeedDPS)
		}
		total += tw.Weight
	}
	if !finite(total) || total <= 0 {
		return fmt.Errorf("scenario %q: trajectory weights sum to %v", c.Name, total)
	}
	switch c.Interference {
	case InterfereNone, InterfereWiFi:
	default:
		return fmt.Errorf("scenario %q: unknown interference level %q", c.Name, c.Interference)
	}
	for i, f := range c.Faults {
		windowed, ok := faultKindWindowed[f.Kind]
		if !ok {
			return fmt.Errorf("scenario %q: fault %d has unknown kind %q", c.Name, i, f.Kind)
		}
		if windowed {
			if !finite(f.Start) || !finite(f.End) || f.Start < 0 || f.End <= f.Start {
				return fmt.Errorf("scenario %q: fault %q window [%v, %v) is not a forward interval from t ≥ 0", c.Name, f.Kind, f.Start, f.End)
			}
			if f.Level != 0 && (!finite(f.Level) || f.Level < 0) {
				return fmt.Errorf("scenario %q: fault %q level %v is invalid", c.Name, f.Kind, f.Level)
			}
		} else {
			if !finite(f.Level) || f.Level < 0 || f.Level > 1 {
				return fmt.Errorf("scenario %q: fault %q level %v outside [0, 1]", c.Name, f.Kind, f.Level)
			}
			if f.Start != 0 || f.End != 0 {
				return fmt.Errorf("scenario %q: fault %q is a rate fault and takes no window", c.Name, f.Kind)
			}
		}
	}
	if c.Profile.Positions < 0 || c.Profile.Positions > 64 {
		return fmt.Errorf("scenario %q: %d profiling positions outside 0–64", c.Name, c.Profile.Positions)
	}
	if !finite(c.Profile.PerPositionS) || c.Profile.PerPositionS < 0 {
		return fmt.Errorf("scenario %q: per-position profiling time %v is invalid", c.Name, c.Profile.PerPositionS)
	}
	return nil
}

// Parse decodes a JSON scenario config and validates it. Unknown
// fields are rejected so a typoed knob fails loudly instead of
// silently reverting to a default.
func Parse(data []byte) (*Config, error) {
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// cabinConfig composes the declarative cabin into the substrate's
// cabin.Config. Callers must have validated first.
func (c *Config) cabinConfig() cabin.Config {
	cc := cabin.DefaultConfig()
	if c.Cabin.Layout != 0 {
		cc.Layout = cabin.Layout(c.Cabin.Layout)
	}
	if c.Cabin.Phone != [3]float64{} {
		cc.Phone.X, cc.Phone.Y, cc.Phone.Z = c.Cabin.Phone[0], c.Cabin.Phone[1], c.Cabin.Phone[2]
	}
	cc.PhoneAimedAtDriver = !c.Cabin.PhoneSideways
	cc.Passenger = c.Occupants >= 2
	if c.Cabin.Vibration {
		v := cabin.DefaultVibration()
		cc.Vibration = &v
	}
	return cc
}

// style resolves the subject's driver profile.
func (c *Config) style() driver.Profile {
	switch c.Driver {
	case "B":
		return driver.DriverB()
	case "C":
		return driver.DriverC()
	default:
		return driver.DriverA()
	}
}

// profileOptions resolves the profiling spec with corpus defaults.
func (c *Config) profileOptions() (positions int, perPositionS float64) {
	positions, perPositionS = c.Profile.Positions, c.Profile.PerPositionS
	if positions == 0 {
		positions = 5
	}
	if perPositionS == 0 {
		perPositionS = 4
	}
	return positions, perPositionS
}

// faultsConfig assembles the internal/faults schedule the spec list
// declares, seeded for one session.
func (c *Config) faultsConfig(seed int64) faults.Config {
	fc := faults.Config{Seed: seed}
	for _, f := range c.Faults {
		w := faults.Window{Start: f.Start, End: f.End}
		switch f.Kind {
		case FaultCSIBlackout:
			fc.CSIBlackouts = append(fc.CSIBlackouts, w)
		case FaultIMUOutage:
			fc.IMUOutages = append(fc.IMUOutages, w)
		case FaultCameraOutage:
			fc.CameraOutages = append(fc.CameraOutages, w)
		case FaultBurstNoise:
			fc.CSI.NoiseWindows = append(fc.CSI.NoiseWindows, w)
			if f.Level > 0 {
				fc.CSI.NoiseStd = f.Level
			}
		case FaultAntennaDropout:
			fc.CSI.DropoutWindows = append(fc.CSI.DropoutWindows, w)
		case FaultClockJitter:
			fc.Clock.JitterStd = f.Level
		case FaultClockRegress:
			fc.Clock.Regress = f.Level
		case FaultClockDup:
			fc.Clock.Dup = f.Level
		case FaultPacketLoss:
			fc.Packet.Loss = f.Level
		case FaultPacketDup:
			fc.Packet.Dup = f.Level
		case FaultPacketReorder:
			fc.Packet.Reorder = f.Level
		case FaultPacketCorrupt:
			fc.Packet.Corrupt = f.Level
		}
	}
	return fc
}

// wireFaults reports whether the schedule includes wire-level packet
// faults (which route the stream through the encode→fault→decode
// pump) as opposed to stream-level faults only.
func (c *Config) wireFaults() bool {
	for _, f := range c.Faults {
		switch f.Kind {
		case FaultPacketLoss, FaultPacketDup, FaultPacketReorder, FaultPacketCorrupt:
			if f.Level > 0 {
				return true
			}
		}
	}
	return false
}

// hasFaults reports whether any fault is scheduled at all.
func (c *Config) hasFaults() bool { return len(c.Faults) > 0 }

// KindNames returns the sorted trajectory kinds in the mix — handy
// for reports.
func (c *Config) KindNames() []string {
	seen := map[string]bool{}
	for _, tw := range c.Trajectories {
		seen[tw.Kind] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
