package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioConfig drives the JSON parser/validator with arbitrary
// documents. The invariant under fuzz: Parse either rejects the input
// with an error or returns a config that (a) passes Validate, (b)
// carries only finite geometry and non-negative durations/weights, and
// (c) survives a marshal→parse round trip — so nothing non-finite or
// malformed can sneak past the gate into the simulator substrate.
func FuzzScenarioConfig(f *testing.F) {
	for _, c := range Corpus() {
		blob, err := json.Marshal(c)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	// Known-invalid shapes steer the mutator at the rejection rules:
	// non-finite geometry, negative durations/weights, unknown fault
	// kinds, zero occupants, zero seed, unknown fields.
	for _, s := range []string{
		`{}`,
		`{"name":"x","seed":1,"duration_s":-5,"occupants":1,"trajectories":[{"kind":"drive","weight":1}]}`,
		`{"name":"x","seed":1,"duration_s":1e999,"occupants":1,"trajectories":[{"kind":"drive","weight":1}]}`,
		`{"name":"x","seed":1,"duration_s":5,"occupants":0,"trajectories":[{"kind":"drive","weight":1}]}`,
		`{"name":"x","seed":0,"duration_s":5,"occupants":1,"trajectories":[{"kind":"drive","weight":1}]}`,
		`{"name":"x","seed":1,"duration_s":5,"occupants":1,"trajectories":[{"kind":"drive","weight":-2}]}`,
		`{"name":"x","seed":1,"duration_s":5,"occupants":1,"trajectories":[{"kind":"moonwalk","weight":1}]}`,
		`{"name":"x","seed":1,"duration_s":5,"occupants":1,"cabin":{"phone":[0.1,null,0.2]},"trajectories":[{"kind":"drive","weight":1}]}`,
		`{"name":"x","seed":1,"duration_s":5,"occupants":1,"trajectories":[{"kind":"drive","weight":1}],"faults":[{"kind":"gremlins","start":1,"end":2}]}`,
		`{"name":"x","seed":1,"duration_s":5,"occupants":1,"trajectories":[{"kind":"drive","weight":1}],"faults":[{"kind":"csi-blackout","start":3,"end":1}]}`,
		`{"name":"x","seed":1,"duration_s":5,"occupants":1,"trajectories":[{"kind":"drive","weight":1}],"typo_knob":true}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return // rejected: the only other acceptable outcome
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("Parse accepted a config Validate rejects: %v\ninput: %s", err, data)
		}
		// Spot-check the invariants the validator promises, so a
		// validator hole shows up as a fuzz crash, not silently later
		// inside the simulator.
		if c.Seed == 0 || c.Occupants < 1 || !finite(c.DurationS) || c.DurationS <= 0 {
			t.Fatalf("accepted config breaks core invariants: %+v", c)
		}
		for _, v := range c.Cabin.Phone {
			if !finite(v) {
				t.Fatalf("accepted config has non-finite phone position: %+v", c)
			}
		}
		for _, tw := range c.Trajectories {
			if !trajectoryKinds[tw.Kind] || !finite(tw.Weight) || tw.Weight <= 0 {
				t.Fatalf("accepted config has invalid trajectory entry: %+v", tw)
			}
		}
		for _, fs := range c.Faults {
			if _, ok := faultKindWindowed[fs.Kind]; !ok {
				t.Fatalf("accepted config has unknown fault kind: %+v", fs)
			}
		}
		// Round trip: a valid config re-marshals to a document Parse
		// accepts again.
		blob, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal of accepted config failed: %v", err)
		}
		if _, err := Parse(blob); err != nil {
			t.Fatalf("re-parse of accepted config failed: %v\nround-trip: %s", err, blob)
		}
	})
}
