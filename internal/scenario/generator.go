package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vihot/internal/core"
	"vihot/internal/geom"
	"vihot/internal/obs"
	"vihot/internal/serve"
	"vihot/internal/stats"
)

// MixEntry weights one scenario inside a workload mix.
type MixEntry struct {
	Config Config
	Weight float64
}

// GeneratorConfig tunes one workload-generator run.
type GeneratorConfig struct {
	// Mix is the weighted scenario mix; at least one entry.
	Mix []MixEntry
	// Sessions is the total session count, apportioned across the mix
	// by weight (largest-remainder, deterministic).
	Sessions int
	// Deterministic runs the manager in deterministic mode with
	// sequential pushes: same config ⇒ bit-identical Report. This is
	// the golden-suite mode; leave false to exercise the real
	// concurrent engine.
	Deterministic bool
	// Shards/QueueLen tune the concurrent manager (ignored when
	// Deterministic). Zero takes the serve defaults, except QueueLen
	// which defaults high enough that a replay push-storm doesn't shed.
	Shards   int
	QueueLen int
	// Metrics, if set, receives the vihot_scenario_* series (and is
	// handed to the manager for its vihot_serve_* series).
	Metrics *obs.Registry
	// BuildWorkers bounds parallel stream rendering; 0 = GOMAXPROCS.
	// Stream content is deterministic regardless of build order.
	BuildWorkers int
}

// ScenarioReport is one scenario's slice of a generator run.
type ScenarioReport struct {
	Scenario  string  `json:"scenario"`
	Sessions  int     `json:"sessions"`
	Items     int     `json:"items"`
	Estimates int     `json:"estimates"`
	// MedianErrDeg/P95ErrDeg/MaxErrDeg summarize the per-estimate
	// absolute yaw error against the trajectory ground truth.
	MedianErrDeg float64 `json:"median_err_deg"`
	P95ErrDeg    float64 `json:"p95_err_deg"`
	MaxErrDeg    float64 `json:"max_err_deg"`
	// FinalHealth counts sessions by their degradation state at end of
	// replay, keyed by serve.Health.String().
	FinalHealth map[string]int `json:"final_health"`
	// Transitions counts degradation state-machine transitions across
	// the scenario's sessions.
	Transitions int `json:"transitions"`
	// Trajectories counts sessions by the mix kind they drew.
	Trajectories map[string]int `json:"trajectories"`
}

// Report is a full generator run summary.
type Report struct {
	Sessions  int               `json:"sessions"`
	Scenarios []ScenarioReport  `json:"scenarios"`
	Counters  serve.CounterSnapshot `json:"counters"`
}

// Apportion splits n sessions across the mix weights with the
// largest-remainder method — deterministic, exact total, and stable
// under reordering-free repetition. Exported for the cmds, which need
// the same split to label their own sessions.
func Apportion(weights []float64, n int) []int {
	counts := make([]int, len(weights))
	if n <= 0 || len(weights) == 0 {
		return counts
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return counts
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := w / total * float64(n)
		counts[i] = int(exact)
		assigned += counts[i]
		rems[i] = rem{i, exact - float64(counts[i])}
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; assigned < n; i++ {
		counts[rems[i%len(rems)].idx]++
		assigned++
	}
	return counts
}

// Generate runs the workload: renders every session's stream, replays
// the whole mix through a serve.Manager at the configured session
// count, and reports per-scenario accuracy and health breakdowns.
func Generate(gc GeneratorConfig) (*Report, error) {
	if len(gc.Mix) == 0 {
		return nil, fmt.Errorf("scenario: empty mix")
	}
	if gc.Sessions <= 0 {
		gc.Sessions = len(gc.Mix)
	}
	weights := make([]float64, len(gc.Mix))
	for i, e := range gc.Mix {
		if err := e.Config.Validate(); err != nil {
			return nil, err
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 || !finite(w) {
			return nil, fmt.Errorf("scenario: mix weight %v for %q", e.Weight, e.Config.Name)
		}
		weights[i] = w
	}
	counts := Apportion(weights, gc.Sessions)

	// Profiles: one per scenario with sessions, collected in that
	// scenario's own cabin and shared immutably across its sessions.
	profiles := make([]*core.Profile, len(gc.Mix))
	for i, e := range gc.Mix {
		if counts[i] == 0 {
			continue
		}
		p, err := e.Config.CollectProfile()
		if err != nil {
			return nil, err
		}
		profiles[i] = p
	}

	// Render every stream. Rendering dominates wall time (it is the
	// cabin's electromagnetics), so it fans out across BuildWorkers;
	// stream content depends only on (config, session index).
	type job struct{ mix, session int }
	var jobs []job
	for i, n := range counts {
		for j := 0; j < n; j++ {
			jobs = append(jobs, job{i, j})
		}
	}
	streams := make([]*Stream, len(jobs))
	workers := gc.BuildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	var (
		wg       sync.WaitGroup
		jobCh    = make(chan int)
		buildErr error
		errOnce  sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobCh {
				j := jobs[k]
				cfg := gc.Mix[j.mix].Config
				id := fmt.Sprintf("%s/%03d", cfg.Name, j.session)
				st, err := cfg.BuildStream(id, j.session)
				if err != nil {
					errOnce.Do(func() { buildErr = err })
					return
				}
				streams[k] = st
			}
		}()
	}
	for k := range jobs {
		jobCh <- k
	}
	close(jobCh)
	wg.Wait()
	if buildErr != nil {
		return nil, buildErr
	}

	// Replay through the manager.
	var (
		mu        sync.Mutex
		estimates = map[string][]core.Estimate{}
		trans     = map[string]int{}
	)
	queue := gc.QueueLen
	if queue == 0 {
		queue = 1 << 16 // replay pushes arrive in storms, not at link rate
	}
	mgr := serve.New(serve.Config{
		Deterministic: gc.Deterministic,
		Shards:        gc.Shards,
		QueueLen:      queue,
		Metrics:       gc.Metrics,
		OnEstimate: func(id string, est core.Estimate) {
			mu.Lock()
			estimates[id] = append(estimates[id], est)
			mu.Unlock()
		},
		OnHealth: func(id string, t float64, from, to serve.Health) {
			mu.Lock()
			trans[id]++
			mu.Unlock()
		},
	})
	defer mgr.Close()
	byMix := make([][]*Stream, len(gc.Mix))
	k := 0
	for i, n := range counts {
		for j := 0; j < n; j++ {
			byMix[i] = append(byMix[i], streams[k])
			k++
		}
	}
	for i := range gc.Mix {
		for _, st := range byMix[i] {
			if err := mgr.Open(st.ID, profiles[i], core.DefaultPipelineConfig()); err != nil {
				return nil, err
			}
		}
	}
	if gc.Deterministic {
		for _, st := range streams {
			for _, it := range st.Items {
				mgr.Push(it)
			}
		}
	} else {
		var pushers sync.WaitGroup
		for _, st := range streams {
			pushers.Add(1)
			go func(st *Stream) {
				defer pushers.Done()
				const batch = 64
				for i := 0; i < len(st.Items); i += batch {
					hi := i + batch
					if hi > len(st.Items) {
						hi = len(st.Items)
					}
					mgr.PushBatch(st.Items[i:hi])
				}
			}(st)
		}
		pushers.Wait()
		mgr.Flush()
	}

	// Final health must be read before CloseDrain purges the sessions.
	finalHealth := map[string]serve.Health{}
	for _, st := range streams {
		if h, ok := mgr.Health(st.ID); ok {
			finalHealth[st.ID] = h
		}
	}
	mgr.CloseDrain()
	snap := mgr.Counters().Snapshot()

	// Score per scenario.
	m := newGenMetrics(gc.Metrics)
	rep := &Report{Sessions: gc.Sessions, Counters: snap}
	for i, e := range gc.Mix {
		sr := ScenarioReport{
			Scenario:     e.Config.Name,
			Sessions:     counts[i],
			FinalHealth:  map[string]int{},
			Trajectories: map[string]int{},
		}
		var errs []float64
		for _, st := range byMix[i] {
			sr.Items += len(st.Items)
			sr.Trajectories[st.Trajectory]++
			mu.Lock()
			ests := estimates[st.ID]
			nTrans := trans[st.ID]
			mu.Unlock()
			sr.Estimates += len(ests)
			sr.Transitions += nTrans
			for _, est := range ests {
				d := geom.AngleDistDeg(est.Yaw, st.Truth.HeadYaw.At(est.Time))
				errs = append(errs, d)
				m.observeErr(sr.Scenario, d)
			}
			if h, ok := finalHealth[st.ID]; ok {
				sr.FinalHealth[h.String()]++
			}
		}
		if len(errs) > 0 {
			sr.MedianErrDeg = stats.Median(errs)
			sr.P95ErrDeg, _ = stats.Percentile(errs, 95)
			sr.MaxErrDeg = stats.Max(errs)
		}
		m.record(sr)
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	return rep, nil
}

// genMetrics registers the vihot_scenario_* series. All methods are
// nil-safe so the generator wires them unconditionally.
type genMetrics struct {
	reg *obs.Registry
}

func newGenMetrics(r *obs.Registry) genMetrics { return genMetrics{reg: r} }

// observeErr records one estimate's absolute yaw error.
func (g genMetrics) observeErr(scenarioName string, errDeg float64) {
	if g.reg == nil {
		return
	}
	g.reg.Histogram("vihot_scenario_error_deg",
		"per-estimate absolute yaw error against scenario ground truth",
		obs.LinearBuckets(0, 5, 19), "scenario", scenarioName).Observe(errDeg)
}

// record publishes one scenario's summary gauges and counters.
func (g genMetrics) record(sr ScenarioReport) {
	if g.reg == nil {
		return
	}
	g.reg.Counter("vihot_scenario_sessions_total",
		"sessions replayed, by scenario", "scenario", sr.Scenario).Add(uint64(sr.Sessions))
	g.reg.Counter("vihot_scenario_estimates_total",
		"estimates produced, by scenario", "scenario", sr.Scenario).Add(uint64(sr.Estimates))
	g.reg.Gauge("vihot_scenario_median_err_deg",
		"median absolute yaw error of the last run, by scenario", "scenario", sr.Scenario).Set(sr.MedianErrDeg)
	g.reg.Gauge("vihot_scenario_p95_err_deg",
		"95th-percentile absolute yaw error of the last run, by scenario", "scenario", sr.Scenario).Set(sr.P95ErrDeg)
	for state, n := range sr.FinalHealth {
		g.reg.Gauge("vihot_scenario_final_health",
			"sessions ending the run in each degradation state, by scenario",
			"scenario", sr.Scenario, "state", state).Set(float64(n))
	}
}
