package scenario

import (
	"fmt"

	"vihot/internal/camera"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/experiment"
	"vihot/internal/faults"
	"vihot/internal/imu"
	"vihot/internal/serve"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// Stream is one session's fully rendered workload: the serve.Item
// sequence the receiver would ingest (faults already applied), plus
// the ground-truth trajectory to score estimates against.
type Stream struct {
	// ID is the session ID every item is addressed to.
	ID string
	// Scenario is the config name the stream was drawn from.
	Scenario string
	// Trajectory is the mix kind this session drew.
	Trajectory string
	// Items is the post-fault item sequence in delivery order.
	Items []serve.Item
	// Truth is the trajectory ground truth (yaw/pitch/position over
	// stream time).
	Truth *driver.Scenario
}

// sessionSeed derives one session's root seed from the config seed and
// the session's index within the scenario. The multiplier keeps
// neighboring sessions' seeds far apart in the generator's state
// space; the +1 keeps session 0 of seed S distinct from the profiling
// environment, which uses S itself.
func sessionSeed(configSeed int64, session int) int64 {
	return configSeed*1000003 + int64(session) + 1
}

// NewEnv composes the scenario's cabin and channel condition into a
// fresh simulation environment for one session. Each session gets its
// own environment — its own receiver hardware state and RNG streams —
// exactly as each car in a fleet is its own deployment.
func (c *Config) NewEnv(session int) (*experiment.Env, error) {
	env, err := experiment.NewEnv(c.cabinConfig(), sessionSeed(c.Seed, session))
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", c.Name, err)
	}
	if c.Interference == InterfereWiFi {
		env.Timing = wifi.InterferedTiming()
	}
	return env, nil
}

// CollectProfile runs the scenario's profiling session — in the
// scenario's own cabin, which is the point: a profile fingerprints a
// geometry — and returns the immutable profile every session of this
// scenario shares.
func (c *Config) CollectProfile() (*core.Profile, error) {
	env, err := experiment.NewEnv(c.cabinConfig(), c.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", c.Name, err)
	}
	// Profiling happens on a quiet channel even for interfered
	// scenarios: the paper's profiling is a controlled setup step.
	popt := experiment.DefaultProfileOptions()
	popt.Positions, popt.PerPositionS = c.profileOptions()
	p, _, err := env.CollectProfile(c.style(), popt)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: profiling: %w", c.Name, err)
	}
	return p, nil
}

// drawTrajectory picks a kind from the weighted mix with the given
// RNG and synthesizes it.
func (c *Config) drawTrajectory(rng *stats.RNG) (*driver.Scenario, string) {
	total := 0.0
	for _, tw := range c.Trajectories {
		total += tw.Weight
	}
	pick := rng.Float64() * total
	chosen := c.Trajectories[len(c.Trajectories)-1]
	for _, tw := range c.Trajectories {
		if pick < tw.Weight {
			chosen = tw
			break
		}
		pick -= tw.Weight
	}
	return c.buildTrajectory(rng, chosen), chosen.Kind
}

// buildTrajectory synthesizes one trajectory of the chosen kind.
func (c *Config) buildTrajectory(rng *stats.RNG, tw TrajectoryWeight) *driver.Scenario {
	style := c.style()
	passenger := c.PassengerMotion && c.Occupants >= 2
	switch tw.Kind {
	case TrajSweep:
		speed := tw.SpeedDPS
		if speed == 0 {
			speed = style.TurnSpeedDPS
		}
		sc, _ := driver.SweepScenario(style, 1, c.DurationS, speed)
		sc.Name, sc.Duration = TrajSweep, c.DurationS
		return sc
	case TrajDrowsy:
		return driver.DrowsyScenario(rng.Fork(), style, c.DurationS)
	case TrajPos3D:
		return driver.PositionScanScenario(rng.Fork(), style, c.DurationS)
	case TrajRider:
		pos, _ := c.profileOptions()
		return driver.RiderScenario(rng.Fork(), style, c.DurationS, pos)
	case TrajSteerOnly:
		return driver.SteeringOnlyScenario(c.DurationS)
	case TrajStill:
		return driver.StillScenario(style, c.DurationS)
	default: // TrajDrive
		sc := driver.DrivingScenario(rng.Fork(), style, c.DurationS, driver.GlanceOptions{
			Steering:       tw.Steering,
			PositionJitter: 0.008,
			PassengerTurns: passenger,
		})
		return sc
	}
}

// Session materializes session number `session`'s environment and
// drawn trajectory without rendering items — the entry point for live
// senders (vihot-serve) that stream the scenario over a wire instead
// of replaying a prebuilt item sequence. The trajectory is the same
// one BuildStream would draw for this (config, session).
func (c *Config) Session(session int) (*experiment.Env, *driver.Scenario, string, error) {
	env, err := c.NewEnv(session)
	if err != nil {
		return nil, nil, "", err
	}
	sc, kind := c.drawTrajectory(env.RNG.Fork())
	return env, sc, kind, nil
}

// BuildStream renders session number `session` of the scenario: draws
// a trajectory from the mix, synthesizes the cabin's CSI/IMU/camera
// item sequence at the link's arrival times, and applies the fault
// schedule. Fully determined by (config, session) — see the package
// determinism contract.
func (c *Config) BuildStream(id string, session int) (*Stream, error) {
	env, sc, kind, err := c.Session(session)
	if err != nil {
		return nil, err
	}

	phone := imu.NewPhoneIMU(env.RNG.Fork())
	var cam *camera.Tracker
	if c.Camera {
		cam = camera.NewTracker(env.RNG.Fork())
	}

	var items []serve.Item
	nextIMU := 0.0
	for _, ts := range env.Timing.ArrivalTimes(env.RNG.Fork(), sc.Duration) {
		for nextIMU <= ts {
			items = append(items, serve.Item{Session: id, Kind: serve.KindIMU,
				IMU: phone.Sample(nextIMU, sc.CarYawRateDPS(nextIMU), sc.SpeedMPS)})
			if cam != nil {
				lag := cam.Latency()
				if est, ok := cam.Sample(nextIMU, sc.HeadYaw.At(nextIMU-lag), sc.TrueYawRateDPS(nextIMU-lag)); ok {
					items = append(items, serve.Item{Session: id, Kind: serve.KindCamera, Camera: est})
				}
			}
			nextIMU += 0.01
		}
		// Raw frames, not pre-sanitized phases: every CSI sample takes
		// the same sanitize path a wire deployment exercises.
		items = append(items, serve.Item{Session: id, Kind: serve.KindFrame, Frame: env.FrameAt(sc.State(ts))})
	}

	if c.hasFaults() {
		inj := faults.New(c.faultsConfig(sessionSeed(c.Seed, session)))
		if c.wireFaults() {
			items = inj.Pump(id, items)
		} else {
			items = inj.Apply(items)
		}
	}
	return &Stream{ID: id, Scenario: c.Name, Trajectory: kind, Items: items, Truth: sc}, nil
}
