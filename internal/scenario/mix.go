package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseMix resolves a command-line mix spec against the corpus: "all"
// takes the whole corpus at equal weight, otherwise a comma-separated
// "name:weight" list (weight defaults to 1 when omitted), e.g.
// "baseline:3,multi-occupant:1". A non-zero seconds overrides every
// resolved scenario's configured duration.
func ParseMix(spec string, seconds float64) ([]MixEntry, error) {
	var mix []MixEntry
	add := func(name string, weight float64) error {
		cfg, err := ByName(name)
		if err != nil {
			return err
		}
		if seconds > 0 {
			cfg.DurationS = seconds
		}
		mix = append(mix, MixEntry{Config: cfg, Weight: weight})
		return nil
	}
	if strings.TrimSpace(spec) == "all" {
		for _, name := range CorpusNames() {
			if err := add(name, 1); err != nil {
				return nil, err
			}
		}
		return mix, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight := part, 1.0
		if i := strings.LastIndex(part, ":"); i >= 0 {
			w, err := strconv.ParseFloat(part[i+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("scenario mix %q: bad weight: %v", part, err)
			}
			name, weight = part[:i], w
		}
		if err := add(name, weight); err != nil {
			return nil, err
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("scenario mix %q: no scenarios (try \"all\" or %v)", spec, CorpusNames())
	}
	return mix, nil
}
