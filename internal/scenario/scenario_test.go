package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"vihot/internal/serve"
)

// valid returns a minimal passing config for mutation.
func valid() Config {
	return Config{
		Name: "t", Seed: 7, DurationS: 5, Occupants: 1,
		Trajectories: []TrajectoryWeight{{Kind: TrajDrive, Weight: 1}},
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	c := valid()
	if err := c.Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the error
	}{
		{"empty name", func(c *Config) { c.Name = "" }, "needs a name"},
		{"zero seed", func(c *Config) { c.Seed = 0 }, "seed"},
		{"zero occupants", func(c *Config) { c.Occupants = 0 }, "no head to track"},
		{"too many occupants", func(c *Config) { c.Occupants = 3 }, "at most"},
		{"passenger motion alone", func(c *Config) { c.PassengerMotion = true }, "needs a passenger"},
		{"negative duration", func(c *Config) { c.DurationS = -1 }, "duration"},
		{"NaN duration", func(c *Config) { c.DurationS = math.NaN() }, "duration"},
		{"Inf duration", func(c *Config) { c.DurationS = math.Inf(1) }, "duration"},
		{"bad layout", func(c *Config) { c.Cabin.Layout = 6 }, "layout"},
		{"NaN phone", func(c *Config) { c.Cabin.Phone[1] = math.NaN() }, "phone position"},
		{"Inf phone", func(c *Config) { c.Cabin.Phone[0] = math.Inf(-1) }, "phone position"},
		{"unknown driver", func(c *Config) { c.Driver = "Z" }, "driver style"},
		{"empty mix", func(c *Config) { c.Trajectories = nil }, "empty trajectory mix"},
		{"unknown trajectory", func(c *Config) { c.Trajectories[0].Kind = "moonwalk" }, "unknown kind"},
		{"negative weight", func(c *Config) { c.Trajectories[0].Weight = -1 }, "weight"},
		{"zero weight", func(c *Config) { c.Trajectories[0].Weight = 0 }, "weight"},
		{"NaN weight", func(c *Config) { c.Trajectories[0].Weight = math.NaN() }, "weight"},
		{"negative speed", func(c *Config) { c.Trajectories[0].SpeedDPS = -10 }, "speed"},
		{"unknown interference", func(c *Config) { c.Interference = "microwave" }, "interference"},
		{"unknown fault kind", func(c *Config) {
			c.Faults = []FaultSpec{{Kind: "gremlins", Start: 1, End: 2}}
		}, "unknown kind"},
		{"backwards fault window", func(c *Config) {
			c.Faults = []FaultSpec{{Kind: FaultCSIBlackout, Start: 3, End: 1}}
		}, "window"},
		{"negative fault start", func(c *Config) {
			c.Faults = []FaultSpec{{Kind: FaultCSIBlackout, Start: -1, End: 1}}
		}, "window"},
		{"rate fault above 1", func(c *Config) {
			c.Faults = []FaultSpec{{Kind: FaultPacketLoss, Level: 1.5}}
		}, "outside [0, 1]"},
		{"rate fault with window", func(c *Config) {
			c.Faults = []FaultSpec{{Kind: FaultClockJitter, Level: 0.1, Start: 1, End: 2}}
		}, "takes no window"},
		{"profile positions", func(c *Config) { c.Profile.Positions = 100 }, "positions"},
		{"negative per-position time", func(c *Config) { c.Profile.PerPositionS = -3 }, "per-position"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := valid()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("validator accepted %+v", c)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"t","seed":7,"duration_s":5,"occupants":1,` +
		`"trajectories":[{"kind":"drive","weight":1}],"typo_knob":true}`))
	if err == nil || !strings.Contains(err.Error(), "typo_knob") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestParseRoundTripsCorpus(t *testing.T) {
	for _, c := range Corpus() {
		blob, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(blob)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if got.Name != c.Name || got.Seed != c.Seed {
			t.Fatalf("%s round-tripped to %+v", c.Name, got)
		}
	}
}

func TestCorpusNamesAndByName(t *testing.T) {
	names := CorpusNames()
	if len(names) < 5 {
		t.Fatalf("corpus has %d scenarios, want >= 5", len(names))
	}
	for _, n := range names {
		c, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if c.Name != n {
			t.Fatalf("ByName(%q) returned %q", n, c.Name)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("unknown corpus name accepted")
	}
}

func TestApportion(t *testing.T) {
	cases := []struct {
		weights []float64
		n       int
		want    []int
	}{
		{[]float64{1, 1, 1}, 3, []int{1, 1, 1}},
		{[]float64{3, 1}, 4, []int{3, 1}},
		{[]float64{3, 1}, 5, []int{4, 1}},
		{[]float64{1, 1, 1}, 1, []int{1, 0, 0}},
		{[]float64{0, 1}, 4, []int{0, 4}},
		{nil, 4, []int{}},
	}
	for _, tc := range cases {
		got := Apportion(tc.weights, tc.n)
		sum := 0
		for _, g := range got {
			sum += g
		}
		if tc.weights != nil && tc.n > 0 && sum != tc.n {
			t.Errorf("Apportion(%v, %d) = %v sums to %d", tc.weights, tc.n, got, sum)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("Apportion(%v, %d) = %v, want %v", tc.weights, tc.n, got, tc.want)
				break
			}
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("all", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != len(CorpusNames()) {
		t.Fatalf("ParseMix(all) returned %d entries", len(mix))
	}
	mix, err = ParseMix(" baseline:3 , vr-3d ", 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].Weight != 3 || mix[1].Weight != 1 {
		t.Fatalf("weighted mix parsed as %+v", mix)
	}
	for _, e := range mix {
		if e.Config.DurationS != 2.5 {
			t.Fatalf("duration override not applied: %+v", e.Config)
		}
	}
	for _, bad := range []string{"", "baseline:x", "no-such-scenario", ","} {
		if _, err := ParseMix(bad, 0); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// itemTime extracts the stream timestamp an item carries, whichever
// payload holds it.
func itemTime(it serve.Item) float64 {
	switch it.Kind {
	case serve.KindFrame:
		return it.Frame.Time
	case serve.KindIMU:
		return it.IMU.Time
	case serve.KindCamera:
		return it.Camera.Time
	default:
		return it.Time
	}
}

// TestBuildStreamDeterminism pins the determinism contract at the
// stream level: the same (config, session) renders the identical item
// sequence, and a different session renders a different one.
func TestBuildStreamDeterminism(t *testing.T) {
	cfg, err := ByName(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DurationS = 2
	a, err := cfg.BuildStream("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.BuildStream("s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Items) != len(b.Items) {
		t.Fatalf("item counts differ: %d vs %d", len(a.Items), len(b.Items))
	}
	if a.Trajectory != b.Trajectory {
		t.Fatalf("trajectory draws differ: %q vs %q", a.Trajectory, b.Trajectory)
	}
	for i := range a.Items {
		ia, ib := a.Items[i], b.Items[i]
		if ia.Kind != ib.Kind {
			t.Fatalf("item %d kind differs: %v vs %v", i, ia.Kind, ib.Kind)
		}
		ta, tb := itemTime(ia), itemTime(ib)
		if math.Float64bits(ta) != math.Float64bits(tb) {
			t.Fatalf("item %d time differs: %v vs %v", i, ta, tb)
		}
	}
	c, err := cfg.BuildStream("s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Items) == len(a.Items) {
		same := true
		for i := range a.Items {
			if math.Float64bits(itemTime(a.Items[i])) != math.Float64bits(itemTime(c.Items[i])) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("session 1 rendered the identical stream as session 0")
		}
	}
}

// TestSessionMatchesBuildStream pins the live-sender entry point to
// the replay path: Session must draw the same trajectory BuildStream
// renders for the same (config, session).
func TestSessionMatchesBuildStream(t *testing.T) {
	cfg, err := ByName(LongHaul)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DurationS = 2
	cfg.Faults = nil
	_, sc, kind, err := cfg.Session(3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cfg.BuildStream("s", 3)
	if err != nil {
		t.Fatal(err)
	}
	if kind != st.Trajectory {
		t.Fatalf("Session drew %q, BuildStream drew %q", kind, st.Trajectory)
	}
	for _, tt := range []float64{0, 0.7, 1.9} {
		if math.Float64bits(sc.HeadYaw.At(tt)) != math.Float64bits(st.Truth.HeadYaw.At(tt)) {
			t.Fatalf("ground truth diverges at t=%v", tt)
		}
	}
}
