package experiment

import (
	"fmt"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/geom"
	"vihot/internal/imu"
	"vihot/internal/rf"
	"vihot/internal/stats"
)

// Extensions implement the future-work directions of the paper's
// Sec. 7 so they can be evaluated, not just speculated about. They are
// not paper figures; vihot-bench runs them behind the -ext flag.

// Ext5GHz evaluates the "Choice of radio frequency" direction: the
// paper expects 5 GHz to track better (less diffraction, less
// unintended reflection). In this simulator the shorter wavelength
// also doubles the phase wraps per head sweep, so the experiment
// quantifies the trade rather than assuming it.
func Ext5GHz(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "ext-5ghz",
		Title:      "Extension: 2.4 GHz vs 5 GHz operation (Sec. 7)",
		PaperClaim: "expected: higher band improves accuracy (less diffraction)",
	}
	for _, band := range []struct {
		name string
		ch   rf.Channelization
	}{
		{"2.4 GHz", rf.Channel2G4()},
		{"5 GHz", rf.Channel5G()},
	} {
		band := band
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			cfg := cabin.DefaultConfig()
			cfg.Chan = band.ch
			env, prof, err := profiledEnv(cfg, driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+31))
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, cdfSeries(band.name, errs))
		r.note("%s: median %.1f°, p90 %.1f°", band.name,
			stats.Median(errs), stats.Summarize(errs).P90)
	}
	return r, nil
}

// ExtCameraFusion evaluates the "Combining with cameras" direction: a
// hybrid that blends fresh camera frames into CSI estimates, tested
// under the condition that stresses CSI most (antenna vibration).
func ExtCameraFusion(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "ext-fusion",
		Title:      "Extension: CSI+camera sensor fusion under vibration (Sec. 7)",
		PaperClaim: "expected: cameras add robustness where CSI degrades",
	}
	for _, fusion := range []bool{false, true} {
		fusion := fusion
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			cfg := cabin.DefaultConfig()
			v := cabin.DefaultVibration()
			cfg.Vibration = &v
			env, prof, err := profiledEnv(cfg, driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			pc := o.pipeline()
			pc.CameraFusion = fusion
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+32))
			return env.Track(prof, sc, TrackOptions{Pipeline: pc, Camera: true})
		})
		if err != nil {
			return nil, err
		}
		name := "CSI only"
		if fusion {
			name = "CSI + camera fusion"
		}
		r.Series = append(r.Series, cdfSeries(name, errs))
		s := stats.Summarize(errs)
		r.note("%s: median %.1f°, p90 %.1f°, max %.1f°", name, s.Median, s.P90, s.Max)
	}
	return r, nil
}

// ExtProfileUpdate evaluates Sec. 3.3's "keep updating a driver's CSI
// profile by adding new traces after each trip": a driver re-seats
// with an offset the original profile never saw; merging a second
// profiling pass taken at the new posture recovers the accuracy.
func ExtProfileUpdate(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "ext-update",
		Title:      "Extension: online profile updating across trips (Sec. 3.3)",
		PaperClaim: "expected: merging per-trip traces improves re-seated accuracy",
	}
	reseat := geom.Vec3{X: 0.05, Z: -0.015} // a new slouch the profile lacks

	type variant struct {
		name   string
		merged bool
	}
	for _, v := range []variant{{"trip-1 profile only", false}, {"merged trip-1 + trip-2", true}} {
		v := v
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			if v.merged {
				// Second profiling pass at the re-seated posture.
				prof2, err := reseatedProfile(env, o, reseat)
				if err != nil {
					return nil, err
				}
				merged, err := prof.Merge(prof2)
				if err != nil {
					return nil, err
				}
				prof = merged
			}
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, reseat, stats.NewRNG(o.Seed+33))
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, cdfSeries(v.name, errs))
		r.note("%s: median %.1f°", v.name, stats.Median(errs))
	}
	return r, nil
}

// reseatedProfile collects a short profiling pass with the head base
// shifted by the reseat offset.
func reseatedProfile(env *Env, opt Options, reseat geom.Vec3) (*core.Profile, error) {
	po := opt.Profile
	po.Positions = 4 // a quick top-up pass, not a full re-profile
	sc, segs := driver.SweepScenario(driver.DriverA(), po.Positions, po.PerPositionS, po.SweepDPS)
	// Shift the whole pass by the reseat offset, holding each
	// segment's position constant across the segment.
	shifted := driver.NewPosTrack()
	for _, seg := range segs {
		mid := (seg.Start + seg.End) / 2
		pos := sc.HeadPos.At(mid).Add(reseat)
		shifted.Append(seg.Start, pos)
		shifted.Append(seg.End, pos)
	}
	sc.HeadPos = shifted

	prof := core.NewProfiler(po.MatchRateHz)
	labelRNG := env.RNG.Fork()
	arrivals := env.Timing.ArrivalTimes(env.RNG.Fork(), sc.Duration)
	ai := 0
	for _, seg := range segs {
		// Offset recorded position ids so Merge produces distinct ids.
		prof.StartPosition(seg.Position + 100)
		for ai < len(arrivals) && arrivals[ai] < seg.End {
			t := arrivals[ai]
			ai++
			if t < seg.Start {
				continue
			}
			phi, err := env.PhaseAt(sc.State(t))
			if err != nil {
				return nil, err
			}
			prof.AddPhase(t, phi)
		}
		for t := seg.Start; t < seg.End; t += 1.0 / 60 {
			prof.AddTruth(t, sc.HeadYaw.At(t)+labelRNG.Normal(0, 0.5))
		}
		if !prof.FingerprintCaptured() {
			mid := (seg.Start + seg.SettleEnd) / 2
			phi, err := env.PhaseAt(sc.State(mid))
			if err != nil {
				return nil, err
			}
			prof.MarkFingerprint(phi)
		}
		if err := prof.EndPosition(); err != nil {
			return nil, err
		}
	}
	return prof.Build()
}

// ExtHeadsetSlip quantifies footnote 5 of the paper: the evaluation
// headset occasionally slips on the head, so some of the reported
// "tracking error" is really ground-truth error. The same run is
// scored against the true head yaw and against a slipping headset's
// labels.
func ExtHeadsetSlip(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), opt)
	if err != nil {
		return nil, err
	}
	sc := sweepAt(driver.DriverA(), opt.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(opt.Seed+34))
	res, err := env.Track(prof, sc, TrackOptions{Pipeline: opt.pipeline()})
	if err != nil {
		return nil, err
	}
	headset := imu.NewHeadset(stats.NewRNG(opt.Seed+35), 0.0004)
	var vsHeadset []float64
	for _, est := range res.Estimates {
		label := headset.Sample(est.Time, sc.HeadYaw.At(est.Time))
		vsHeadset = append(vsHeadset, geom.AngleDistDeg(est.Yaw, label.Yaw))
	}
	r := &FigureResult{
		ID:         "ext-slip",
		Title:      "Extension: headset ground-truth slip (paper footnote 5)",
		PaperClaim: "the paper blames rare large errors on headset slip",
	}
	r.Series = append(r.Series, cdfSeries("vs true head yaw", res.Errors))
	r.Series = append(r.Series, cdfSeries("vs slipping headset labels", vsHeadset))
	r.note("vs truth: median %.1f°, max %.1f°", stats.Median(res.Errors), stats.Max(res.Errors))
	r.note("vs headset: median %.1f°, max %.1f° — slip inflates the tail",
		stats.Median(vsHeadset), stats.Max(vsHeadset))
	return r, nil
}

// ExtensionGenerators lists the Sec. 7 extension experiments.
func ExtensionGenerators() []Generator {
	return []Generator{
		{"ext-5ghz", Ext5GHz},
		{"ext-fusion", ExtCameraFusion},
		{"ext-update", ExtProfileUpdate},
		{"ext-slip", ExtHeadsetSlip},
		{"ext-pitch", ExtPitchDisturbance},
	}
}

// ExtPitchDisturbance measures what 3-D head motion costs the 2-D
// tracker (Sec. 7 "3D head tracking"): the driver occasionally nods
// (±pitch) while the system tracks yaw only. The paper's Fig. 2 argues
// pitch stays small in normal driving; this experiment shows what
// happens when it does not.
func ExtPitchDisturbance(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "ext-pitch",
		Title:      "Extension: 3-D motion (pitch nods) vs the 2-D tracker (Sec. 7)",
		PaperClaim: "pitch stays small while driving (Fig. 2); cost of violating that",
	}
	for _, pitchAmp := range []float64{0, 8, 16} {
		pitchAmp := pitchAmp
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+36))
			if pitchAmp > 0 {
				sc.HeadPitch = nodTrack(stats.NewRNG(o.Seed+37), o.RuntimeS, pitchAmp)
			}
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("pitch ±%.0f°", pitchAmp)
		if pitchAmp == 0 {
			name = "no pitch (2-D, paper's premise)"
		}
		r.Series = append(r.Series, cdfSeries(name, errs))
		r.note("%s: median %.1f°", name, stats.Median(errs))
	}
	return r, nil
}

// nodTrack generates occasional nods of the given amplitude.
func nodTrack(rng *stats.RNG, dur, amp float64) *driver.Track {
	tr := driver.NewTrack()
	tr.Append(0, 0)
	t := 0.0
	for t < dur {
		t += rng.Uniform(3, 8)
		target := rng.Uniform(0.5, 1) * amp
		if rng.Bool(0.5) {
			target = -target
		}
		tr.Append(t, 0)
		tr.Append(t+0.4, target)
		tr.Append(t+0.8, 0)
		t += 1
	}
	return tr
}
