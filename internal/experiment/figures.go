package experiment

import (
	"fmt"

	"vihot/internal/cabin"
	"vihot/internal/camera"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/geom"
	"vihot/internal/imu"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// Series is one named data series of a reproduced figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// FigureResult is the output of one reproduced table or figure.
type FigureResult struct {
	ID         string // e.g. "fig10"
	Title      string
	PaperClaim string // what the paper reports, for side-by-side reading
	Series     []Series
	Notes      []string
}

func (r *FigureResult) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Options scales figure experiments. The zero value is replaced by
// DefaultOptions; benches use Quick() to keep -bench runs tractable.
type Options struct {
	Seed     int64
	RuntimeS float64 // run-time test length per condition (paper: 60 s)
	Profile  ProfileOptions
	// EstimateEveryS overrides the tracker estimate cadence
	// (the default 10 ms is faithful but slow for exhaustive sweeps).
	EstimateEveryS float64
	// Repeats pools each accuracy condition over this many independent
	// sessions (fresh profile + run per seed), like the paper's
	// "repeat the test session 10 times". 0 means 1.
	Repeats int
}

// DefaultOptions mirrors Sec. 5.1: 10 positions × 10 s profiling and
// 60 s test runs.
func DefaultOptions() Options {
	return Options{Seed: 1, RuntimeS: 60, Profile: DefaultProfileOptions()}
}

// Quick returns options scaled down ≈4× for benchmarks and CI.
func Quick() Options {
	o := DefaultOptions()
	o.RuntimeS = 15
	o.Profile.PerPositionS = 5
	o.EstimateEveryS = 0.02
	return o
}

func (o Options) normalize() Options {
	if o.RuntimeS <= 0 {
		o.RuntimeS = 60
	}
	if o.Profile.Positions == 0 {
		o.Profile = DefaultProfileOptions()
	}
	if o.Repeats < 1 {
		o.Repeats = 1
	}
	return o
}

// pooled runs one accuracy condition across opt.Repeats independent
// sessions (fresh environment, profile, and run per derived seed) and
// pools the per-estimate errors; the last session's RunResult is
// returned for rate/fallback metadata.
func pooled(opt Options, cond func(o Options) (*RunResult, error)) ([]float64, *RunResult, error) {
	var all []float64
	var last *RunResult
	for r := 0; r < opt.Repeats; r++ {
		o := opt
		o.Seed = opt.Seed + int64(r)*1009
		res, err := cond(o)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, res.Errors...)
		last = res
	}
	return all, last, nil
}

func (o Options) pipeline() core.PipelineConfig {
	pc := core.DefaultPipelineConfig()
	if o.EstimateEveryS > 0 {
		pc.Tracker.EstimateEveryS = o.EstimateEveryS
	}
	return pc
}

// cdfSeries converts an error sample set into a CDF series.
func cdfSeries(name string, errs []float64) Series {
	vals, probs := stats.NewCDF(errs).Points(41)
	return Series{Name: name, X: vals, Y: probs}
}

// profiledEnv builds an environment and collects the default profile.
func profiledEnv(cfg cabin.Config, p driver.Profile, opt Options) (*Env, *core.Profile, error) {
	env, err := NewEnv(cfg, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	prof, _, err := env.CollectProfile(p, opt.Profile)
	if err != nil {
		return nil, nil, err
	}
	return env, prof, nil
}

// Fig02HeadAxes reproduces Fig. 2: during periodic head turning the
// yaw axis swings ±60–100° while pitch and roll stay small.
func Fig02HeadAxes(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	rng := stats.NewRNG(opt.Seed)
	headset := imu.NewHeadset(rng.Fork(), 0)
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 16, 110)

	r := &FigureResult{
		ID:         "fig02",
		Title:      "Head rotation is mostly 2-D (yaw, pitch, roll vs time)",
		PaperClaim: "yaw swings ±60–100°, pitch/roll projections stay small",
	}
	var ts, yaw, pitch, roll []float64
	for t := 0.0; t < 16; t += 0.05 {
		p := headset.Sample(t, sc.HeadYaw.At(t))
		ts = append(ts, t)
		yaw = append(yaw, p.Yaw)
		pitch = append(pitch, p.Pitch)
		roll = append(roll, p.Roll)
	}
	r.Series = []Series{
		{Name: "Yaw", X: ts, Y: yaw},
		{Name: "Pitch", X: ts, Y: pitch},
		{Name: "Roll", X: ts, Y: roll},
	}
	r.note("yaw span %.0f°, |pitch| max %.0f°, |roll| max %.0f°",
		stats.Max(yaw)-stats.Min(yaw),
		maxAbs(pitch), maxAbs(roll))
	return r, nil
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// Fig03PhaseVsOrientation reproduces Fig. 3: the CSI phase vs head
// orientation relation forms a family of parallel, non-injective
// curves — one per head position.
func Fig03PhaseVsOrientation(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	env, err := NewEnv(cabin.DefaultConfig(), opt.Seed)
	if err != nil {
		return nil, err
	}
	r := &FigureResult{
		ID:         "fig03",
		Title:      "CSI phase vs head orientation at different positions",
		PaperClaim: "parallel curves per position; same phase at multiple orientations",
	}
	for _, pos := range []int{1, 3, 5, 7, 9} {
		headPos := cabin.HeadPosition(pos, 10)
		var xs, ys []float64
		for yaw := -90.0; yaw <= 90; yaw += 2 {
			phi, err := env.PhaseAt(cabin.State{HeadPos: headPos, HeadYaw: yaw})
			if err != nil {
				return nil, err
			}
			xs = append(xs, yaw)
			ys = append(ys, phi)
		}
		r.Series = append(r.Series, Series{Name: fmt.Sprintf("position %d", pos), X: xs, Y: ys})
	}
	// Non-injectivity check: a curve with interior extrema maps some
	// phase values to multiple orientations.
	mid := r.Series[2]
	extrema := 0
	for i := 2; i < len(mid.Y); i++ {
		d1 := mid.Y[i-1] - mid.Y[i-2]
		d2 := mid.Y[i] - mid.Y[i-1]
		if d1*d2 < 0 {
			extrema++
		}
	}
	r.note("center curve has %d interior extrema (non-injective: %v)",
		extrema, extrema > 0)
	// Position separation: the curves are vertically offset families.
	var offsets []float64
	for i := 1; i < len(r.Series); i++ {
		a, b := r.Series[i-1].Y, r.Series[i].Y
		var d float64
		for k := range a {
			d += geom.PhaseDiff(b[k], a[k])
		}
		offsets = append(offsets, d/float64(len(a)))
	}
	r.note("mean curve-to-curve offsets between adjacent positions: %v rad", offsets)
	return r, nil
}

// Fig08Steering reproduces Fig. 8: turning the steering wheel swings
// the CSI phase even though the head orientation stays flat.
func Fig08Steering(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	env, err := NewEnv(cabin.DefaultConfig(), opt.Seed)
	if err != nil {
		return nil, err
	}
	sc := driver.SteeringOnlyScenario(10)
	phase, err := env.PhaseSeries(sc)
	if err != nil {
		return nil, err
	}
	r := &FigureResult{
		ID:         "fig08",
		Title:      "Steering-wheel turning affects CSI phase",
		PaperClaim: "head orientation flat while CSI phase varies significantly",
	}
	var ts, phis, yaws []float64
	for i := 0; i < len(phase); i += 25 { // thin for readability
		ts = append(ts, phase[i].T)
		phis = append(phis, phase[i].V)
		yaws = append(yaws, sc.HeadYaw.At(phase[i].T))
	}
	r.Series = []Series{
		{Name: "CSI phase (rad)", X: ts, Y: phis},
		{Name: "head yaw (deg)", X: ts, Y: yaws},
	}
	r.note("phase swing %.2f rad under zero head motion (yaw span %.2f°)",
		stats.Max(phis)-stats.Min(phis), stats.Max(yaws)-stats.Min(yaws))
	return r, nil
}

// Fig10Prediction reproduces Fig. 10: head-orientation prediction
// accuracy for horizons 0–400 ms (mean ± std, and the error CDFs).
func Fig10Prediction(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	horizons := []float64{0, 0.1, 0.2, 0.3, 0.4}
	forecast := make([][]float64, len(horizons))
	for rep := 0; rep < opt.Repeats; rep++ {
		o := opt
		o.Seed = opt.Seed + int64(rep)*1009
		env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), o)
		if err != nil {
			return nil, err
		}
		sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+21))
		res, err := env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline(), Horizons: horizons})
		if err != nil {
			return nil, err
		}
		for i := range horizons {
			forecast[i] = append(forecast[i], res.ForecastErrors[i]...)
		}
	}
	r := &FigureResult{
		ID:         "fig10",
		Title:      "Orientation prediction accuracy vs horizon",
		PaperClaim: "mean error ≈4° at 0 ms growing to ≈18° at 400 ms; max <60° and rare",
	}
	var hx, mean, std []float64
	for i, h := range horizons {
		errs := forecast[i]
		s := stats.Summarize(errs)
		hx = append(hx, h*1000)
		mean = append(mean, s.Mean)
		std = append(std, s.Std)
		r.Series = append(r.Series, cdfSeries(fmt.Sprintf("%.0fms", h*1000), errs))
		r.note("horizon %3.0f ms: mean %.1f° ± %.1f°, median %.1f°, max %.1f°",
			h*1000, s.Mean, s.Std, s.Median, s.Max)
	}
	r.Series = append([]Series{
		{Name: "mean error vs horizon (ms)", X: hx, Y: mean},
		{Name: "std vs horizon (ms)", X: hx, Y: std},
	}, r.Series...)
	return r, nil
}

// Fig11LayoutCurves reproduces Fig. 11: different antenna placements
// yield differently shaped CSI-orientation relations.
func Fig11LayoutCurves(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig11",
		Title:      "Antenna placement changes the CSI-orientation curve",
		PaperClaim: "very different curve shapes for layouts 1 and 2 under similar turns",
	}
	for _, layout := range []cabin.Layout{cabin.Layout1, cabin.Layout2} {
		cfg := cabin.DefaultConfig()
		cfg.Layout = layout
		env, err := NewEnv(cfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		var xs, ys []float64
		for yaw := -90.0; yaw <= 90; yaw += 2 {
			phi, err := env.PhaseAt(cabin.State{HeadPos: cabin.DriverHeadBase, HeadYaw: yaw})
			if err != nil {
				return nil, err
			}
			xs = append(xs, yaw)
			ys = append(ys, phi)
		}
		r.Series = append(r.Series, Series{Name: layout.String(), X: xs, Y: ys})
	}
	// Shape dissimilarity: correlation between the two curves.
	corr := stats.Pearson(r.Series[0].Y, r.Series[1].Y)
	r.note("curve correlation between layouts: %.2f (dissimilar when far from ±1)", corr)
	return r, nil
}

// Fig12AntennaPlacement reproduces Fig. 12: tracking-error CDFs for
// the five candidate RX antenna placements.
func Fig12AntennaPlacement(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig12",
		Title:      "Tracking accuracy under antenna placements 1–5",
		PaperClaim: "best layout <5° median, worst ≈20°; Layout 1 wins",
	}
	for _, layout := range cabin.Layouts() {
		layout := layout
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			cfg := cabin.DefaultConfig()
			cfg.Layout = layout
			env, prof, err := profiledEnv(cfg, driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+22))
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, cdfSeries(layout.String(), errs))
		r.note("%s: median %.1f°, p90 %.1f°", layout, stats.Median(errs),
			stats.Summarize(errs).P90)
	}
	return r, nil
}

// Fig13aProfilingInterval reproduces Fig. 13a: accuracy vs the time
// gap between profiling and run-time. The dominant effect the paper
// identifies is re-seating: for gaps ≥1 hour the driver left the seat,
// shifting the head position slightly; beyond that the gap length
// barely matters.
func Fig13aProfilingInterval(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig13a",
		Title:      "Accuracy vs profiling-runtime interval",
		PaperClaim: "1 min best (≈4°); 1 hour–1 week all similar (≈10° median)",
	}
	cases := []struct {
		name   string
		reseat bool
	}{
		{"1 minute", false},
		{"1 hour", true},
		{"1 day", true},
		{"1 week", true},
	}
	for ci, c := range cases {
		ci, c := ci, c
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			rng := stats.NewRNG(o.Seed + 77 + int64(ci)*131)
			var reseat geom.Vec3
			if c.reseat {
				// Re-seating shifts the resting head position by a few
				// centimeters in a random direction.
				reseat = geom.Vec3{
					X: rng.Normal(0, 0.035),
					Y: rng.Normal(0, 0.012),
					Z: rng.Normal(0, 0.012),
				}
			}
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, reseat, rng.Fork())
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, cdfSeries(c.name, errs))
		r.note("%s: median %.1f°", c.name, stats.Median(errs))
	}
	return r, nil
}

// sweepAt builds a continuous-sweep runtime scenario with the head
// base offset by reseat and natural postural drift applied.
func sweepAt(p driver.Profile, dur, speed float64, reseat geom.Vec3, rng *stats.RNG) *driver.Scenario {
	sc, _ := driver.SweepScenario(p, 1, dur, speed)
	if reseat != (geom.Vec3{}) {
		shifted := driver.NewPosTrack()
		shifted.Append(0, sc.HeadPos.At(0).Add(reseat))
		sc.HeadPos = shifted
	}
	driver.AddPositionDrift(sc, rng, runtimeDriftStd)
	return sc
}

// runtimeDriftStd is the natural postural sway applied to every
// run-time test (profiling is drift-free: the driver holds still on
// purpose).
const runtimeDriftStd = 0.002

// Fig13bWindowSize reproduces Fig. 13b: accuracy vs CSI input window
// size from 10 ms to 300 ms.
func Fig13bWindowSize(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig13b",
		Title:      "Accuracy vs CSI input window size",
		PaperClaim: "longer windows slightly better; even 10 ms achieves ≈7°",
	}
	for _, w := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3} {
		w := w
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			pc := o.pipeline()
			pc.Tracker.WindowS = w
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+23))
			return env.Track(prof, sc, TrackOptions{Pipeline: pc})
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%.0fms", w*1000)
		r.Series = append(r.Series, cdfSeries(name, errs))
		r.note("W=%s: median %.1f°", name, stats.Median(errs))
	}
	return r, nil
}

// Fig13cTurnSpeed reproduces Fig. 13c: accuracy under head-turning
// speeds 100–147°/s — faster turning matches better (more features in
// the window; no motion blur).
func Fig13cTurnSpeed(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig13c",
		Title:      "Accuracy vs head-turning speed",
		PaperClaim: "medians always <10°; accuracy improves with speed",
	}
	// The paper's fixed 300 ms sliding window for this experiment.
	for _, speed := range []float64{100, 111, 124, 147} {
		speed := speed
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			pc := o.pipeline()
			pc.Tracker.WindowS = 0.3
			sc := sweepAt(driver.DriverA(), o.RuntimeS, speed, geom.Vec3{}, stats.NewRNG(o.Seed+24))
			return env.Track(prof, sc, TrackOptions{Pipeline: pc})
		})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%.0f°/s", speed)
		r.Series = append(r.Series, cdfSeries(name, errs))
		r.note("%s: median %.1f°, max %.1f°", name,
			stats.Median(errs), stats.Max(errs))
	}
	return r, nil
}

// Fig13dDrivers reproduces Fig. 13d: per-driver accuracy, each driver
// tracked against their own profile.
func Fig13dDrivers(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig13d",
		Title:      "Accuracy across different drivers",
		PaperClaim: "all three drivers below 10° median",
	}
	for _, d := range []driver.Profile{driver.DriverA(), driver.DriverB(), driver.DriverC()} {
		d := d
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			env, prof, err := profiledEnv(cabin.DefaultConfig(), d, o)
			if err != nil {
				return nil, err
			}
			sc := sweepAt(d, o.RuntimeS, d.TurnSpeedDPS, geom.Vec3{}, stats.NewRNG(o.Seed+25))
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, cdfSeries(d.Name, errs))
		r.note("%s (%.0f cm, %.0f°/s): median %.1f°", d.Name, d.HeightCM,
			d.TurnSpeedDPS, stats.Median(errs))
	}
	return r, nil
}

// Fig14SpeedCurves reproduces Fig. 14: the same head sweep at two
// speeds traces CSI curves of different temporal shape.
func Fig14SpeedCurves(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	env, err := NewEnv(cabin.DefaultConfig(), opt.Seed)
	if err != nil {
		return nil, err
	}
	r := &FigureResult{
		ID:         "fig14",
		Title:      "Rotation speed changes the CSI curve shape over time",
		PaperClaim: "faster rotation compresses the phase trace in time",
	}
	for _, speed := range []float64{100, 147} {
		sc, _ := driver.SweepScenario(driver.DriverA(), 1, 6, speed)
		phase, err := env.PhaseSeries(sc)
		if err != nil {
			return nil, err
		}
		var ts, phis []float64
		for i := 0; i < len(phase); i += 20 {
			ts = append(ts, phase[i].T)
			phis = append(phis, phase[i].V)
		}
		r.Series = append(r.Series, Series{Name: fmt.Sprintf("%.0f°/s", speed), X: ts, Y: phis})
	}
	r.note("series lengths differ in time while covering the same yaw range")
	return r, nil
}

// Fig15MicroMotions reproduces Fig. 15: phase variation under cabin
// micro-motions vs head turning.
func Fig15MicroMotions(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig15",
		Title:      "Phase variations: micro-motions vs head turning",
		PaperClaim: "head turning causes much stronger phase variation",
	}
	cases := []struct {
		name  string
		micro []cabin.MicroMotion
		head  bool
	}{
		{"breathing+blinking", []cabin.MicroMotion{cabin.MicroBreathing()}, false},
		{"intense eye motion", []cabin.MicroMotion{cabin.MicroEyeMotion()}, false},
		{"music vibration", []cabin.MicroMotion{cabin.MicroMusicVibration()}, false},
		{"head turning", nil, true},
	}
	for _, c := range cases {
		cfg := cabin.DefaultConfig()
		cfg.Micro = c.micro
		env, err := NewEnv(cfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		var sc *driver.Scenario
		if c.head {
			sc, _ = driver.SweepScenario(driver.DriverA(), 1, 6, 110)
		} else {
			sc = stillScenario(6)
		}
		phase, err := env.PhaseSeries(sc)
		if err != nil {
			return nil, err
		}
		var ts, phis []float64
		for i := 0; i < len(phase); i += 20 {
			ts = append(ts, phase[i].T)
			phis = append(phis, phase[i].V)
		}
		r.Series = append(r.Series, Series{Name: c.name, X: ts, Y: phis})
		r.note("%s: phase p-p %.3f rad", c.name, stats.Max(phis)-stats.Min(phis))
	}
	return r, nil
}

// stillScenario is a driver sitting still, facing the road.
func stillScenario(dur float64) *driver.Scenario {
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 0.01, 100)
	sc.Duration = dur
	sc.HeadYaw = driver.NewTrack(driver.Key{T: 0, V: 0})
	return sc
}

// Fig16AntennaVibration reproduces Fig. 16: antenna vibration yields
// noisy but near-parallel phase curves of unchanged shape.
func Fig16AntennaVibration(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig16",
		Title:      "WiFi antenna vibration causes noisy phase",
		PaperClaim: "vibrating curves parallel to rigid ones with a small gap",
	}
	var ref []float64
	for _, vib := range []bool{false, true} {
		cfg := cabin.DefaultConfig()
		if vib {
			v := cabin.DefaultVibration()
			cfg.Vibration = &v
		}
		env, err := NewEnv(cfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		sc, _ := driver.SweepScenario(driver.DriverA(), 1, 6, 110)
		phase, err := env.PhaseSeries(sc)
		if err != nil {
			return nil, err
		}
		var ts, phis []float64
		for i := 0; i < len(phase); i += 20 {
			ts = append(ts, phase[i].T)
			phis = append(phis, phase[i].V)
		}
		name := "rigid antennas"
		if vib {
			name = "vibrating antennas"
		}
		r.Series = append(r.Series, Series{Name: name, X: ts, Y: phis})
		if ref == nil {
			ref = phis
		} else if len(ref) == len(phis) {
			r.note("curve correlation rigid vs vibrating: %.2f", stats.Pearson(ref, phis))
		}
	}
	return r, nil
}

// Fig17aVibration reproduces Fig. 17a: accuracy with and without
// antenna vibration.
func Fig17aVibration(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig17a",
		Title:      "Accuracy w/ and w/o antenna vibration",
		PaperClaim: "vibration costs accuracy but median stays ≈6°",
	}
	for _, vib := range []bool{false, true} {
		vib := vib
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			cfg := cabin.DefaultConfig()
			if vib {
				v := cabin.DefaultVibration()
				cfg.Vibration = &v
			}
			env, prof, err := profiledEnv(cfg, driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+27))
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		name := "w/o ant vibration"
		if vib {
			name = "w/ ant vibration"
		}
		r.Series = append(r.Series, cdfSeries(name, errs))
		r.note("%s: median %.1f°", name, stats.Median(errs))
	}
	return r, nil
}

// Fig17bSteeringIdentifier reproduces Fig. 17b: accuracy with and
// without the driver-steering identifier during a trip with real
// steering events.
func Fig17bSteeringIdentifier(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig17b",
		Title:      "Accuracy w/ and w/o the steering identifier",
		PaperClaim: "w/o identifier errors reach ≈80°; identifier restores accuracy",
	}
	for _, enabled := range []bool{false, true} {
		enabled := enabled
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			sc := driver.DrivingScenario(stats.NewRNG(o.Seed+5), driver.DriverA(), o.RuntimeS,
				driver.GlanceOptions{Steering: true, SteerProb: 0.6, PositionJitter: 0.006})
			pc := o.pipeline()
			pc.SteeringIdentifier = enabled
			return env.Track(prof, sc, TrackOptions{Pipeline: pc, Camera: enabled})
		})
		if err != nil {
			return nil, err
		}
		name := "w/o steering identifier"
		if enabled {
			name = "w/ steering identifier"
		}
		r.Series = append(r.Series, cdfSeries(name, errs))
		r.note("%s: median %.1f°, p90 %.1f°, max %.1f°", name,
			stats.Median(errs), stats.Summarize(errs).P90, stats.Max(errs))
	}
	return r, nil
}

// Fig17cPassenger reproduces Fig. 17c: accuracy with and without a
// front passenger who occasionally looks around.
func Fig17cPassenger(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig17c",
		Title:      "Accuracy w/ and w/o a front passenger",
		PaperClaim: "similar medians; rare spikes during passenger turns, never >60°",
	}
	for _, passenger := range []bool{false, true} {
		passenger := passenger
		errs, _, err := pooled(opt, func(o Options) (*RunResult, error) {
			cfg := cabin.DefaultConfig()
			cfg.Passenger = passenger
			env, prof, err := profiledEnv(cfg, driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+26))
			if passenger {
				sc.PassengerYaw = passengerLookTrack(stats.NewRNG(o.Seed+9), o.RuntimeOr(60))
			}
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		name := "w/o passenger"
		if passenger {
			name = "w/ passenger"
		}
		r.Series = append(r.Series, cdfSeries(name, errs))
		r.note("%s: median %.1f°, max %.1f°", name,
			stats.Median(errs), stats.Max(errs))
	}
	return r, nil
}

// RuntimeOr returns the configured runtime or a default.
func (o Options) RuntimeOr(def float64) float64 {
	if o.RuntimeS > 0 {
		return o.RuntimeS
	}
	return def
}

// passengerLookTrack mirrors driver.DrivingScenario's passenger
// behaviour for sweep scenarios.
func passengerLookTrack(rng *stats.RNG, dur float64) *driver.Track {
	sc := driver.DrivingScenario(rng, driver.DriverB(), dur, driver.GlanceOptions{PassengerTurns: true})
	return sc.PassengerYaw
}

// Fig17dWiFiInterference reproduces Fig. 17d: accuracy with and
// without interfering WiFi traffic, which drops the CSI sampling rate
// from ≈500 Hz to ≈400 Hz and stretches the worst-case frame gap.
func Fig17dWiFiInterference(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	r := &FigureResult{
		ID:         "fig17d",
		Title:      "Accuracy w/ and w/o nearby WiFi traffic",
		PaperClaim: "sampling 500→400 Hz, max gap 34→49 ms; median degrades to ≈10°",
	}
	for _, interfered := range []bool{false, true} {
		interfered := interfered
		errs, last, err := pooled(opt, func(o Options) (*RunResult, error) {
			env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), o)
			if err != nil {
				return nil, err
			}
			if interfered {
				env.Timing = wifi.InterferedTiming()
			}
			sc := sweepAt(driver.DriverA(), o.RuntimeS, 115, geom.Vec3{}, stats.NewRNG(o.Seed+28))
			return env.Track(prof, sc, TrackOptions{Pipeline: o.pipeline()})
		})
		if err != nil {
			return nil, err
		}
		name := "w/o WiFi interference"
		if interfered {
			name = "w/ WiFi interference"
		}
		r.Series = append(r.Series, cdfSeries(name, errs))
		r.note("%s: median %.1f°, sampling %.0f Hz, max gap %.0f ms", name,
			stats.Median(errs), last.SampleRateHz, last.MaxGapS*1000)
	}
	return r, nil
}

// SamplingRate reproduces the Sec. 5 headline: ViHOT samples at
// ≥400 Hz, more than 10× a 30 FPS camera.
func SamplingRate(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	rng := stats.NewRNG(opt.Seed)
	r := &FigureResult{
		ID:         "sampling",
		Title:      "CSI sampling rate vs camera frame rate",
		PaperClaim: "≈500 Hz clean, ≈400 Hz interfered; >10× a 30 FPS camera",
	}
	for _, c := range []struct {
		name   string
		timing wifi.TimingModel
	}{
		{"clean link", wifi.CleanTiming()},
		{"interfered link", wifi.InterferedTiming()},
	} {
		ts := c.timing.ArrivalTimes(rng.Fork(), 30)
		rate := float64(len(ts)-1) / (ts[len(ts)-1] - ts[0])
		var gap float64
		for i := 1; i < len(ts); i++ {
			if g := ts[i] - ts[i-1]; g > gap {
				gap = g
			}
		}
		r.Series = append(r.Series, Series{Name: c.name, X: []float64{0}, Y: []float64{rate}})
		r.note("%s: %.0f Hz, max gap %.1f ms (%.1f× a 30 FPS camera)",
			c.name, rate, gap*1000, rate/30)
	}
	cam := camera.NewTracker(rng.Fork())
	r.note("camera baseline: %.0f FPS, %.0f ms processing latency",
		1/cam.FrameInterval(), cam.Latency()*1000)
	return r, nil
}

// ProfilingOverhead reproduces the Sec. 3.3 claim: a 10-position
// profile is collected within ≈100 seconds.
func ProfilingOverhead(opt Options) (*FigureResult, error) {
	opt = opt.normalize()
	env, err := NewEnv(cabin.DefaultConfig(), opt.Seed)
	if err != nil {
		return nil, err
	}
	po := DefaultProfileOptions()
	prof, dur, err := env.CollectProfile(driver.DriverA(), po)
	if err != nil {
		return nil, err
	}
	r := &FigureResult{
		ID:         "profiling",
		Title:      "Profiling overhead",
		PaperClaim: "10 positions profiled within ≈100 s",
	}
	r.Series = append(r.Series, Series{Name: "profiling seconds", X: []float64{0}, Y: []float64{dur}})
	r.note("%d positions in %.0f s (%d grid samples)", len(prof.Positions), dur, prof.GridSamples())
	return r, nil
}

// Generator pairs a figure ID with its generator function.
type Generator struct {
	ID  string
	Run func(Options) (*FigureResult, error)
}

// Generators lists every reproduced figure in paper order.
func Generators() []Generator {
	return []Generator{
		{"fig02", Fig02HeadAxes},
		{"fig03", Fig03PhaseVsOrientation},
		{"fig08", Fig08Steering},
		{"fig10", Fig10Prediction},
		{"fig11", Fig11LayoutCurves},
		{"fig12", Fig12AntennaPlacement},
		{"fig13a", Fig13aProfilingInterval},
		{"fig13b", Fig13bWindowSize},
		{"fig13c", Fig13cTurnSpeed},
		{"fig13d", Fig13dDrivers},
		{"fig14", Fig14SpeedCurves},
		{"fig15", Fig15MicroMotions},
		{"fig16", Fig16AntennaVibration},
		{"fig17a", Fig17aVibration},
		{"fig17b", Fig17bSteeringIdentifier},
		{"fig17c", Fig17cPassenger},
		{"fig17d", Fig17dWiFiInterference},
		{"sampling", SamplingRate},
		{"profiling", ProfilingOverhead},
	}
}

// AllFigures runs every reproduced figure in paper order.
func AllFigures(opt Options) ([]*FigureResult, error) {
	var out []*FigureResult
	for _, g := range Generators() {
		r, err := g.Run(opt)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
