// Package experiment wires every substrate together into runnable
// end-to-end experiments: it drives a cabin scene with a driver
// scenario, pushes the resulting packet stream through the hardware
// and sanitizer models into the ViHOT pipeline, and scores estimates
// against ground truth. The figure generators that reproduce the
// paper's evaluation live in figures.go.
package experiment

import (
	"math"

	"vihot/internal/cabin"
	"vihot/internal/camera"
	"vihot/internal/core"
	"vihot/internal/csi"
	"vihot/internal/driver"
	"vihot/internal/dsp"
	"vihot/internal/geom"
	"vihot/internal/imu"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// Env is one reproducible experimental environment: a cabin, a
// receiver hardware model, a link timing model, and the RNG streams
// that drive them.
type Env struct {
	Scene  *cabin.Scene
	HW     *csi.Hardware
	Timing wifi.TimingModel
	RNG    *stats.RNG

	csiBuf [][]complex128
}

// NewEnv builds an environment with the given cabin configuration and
// deterministic seed.
func NewEnv(cfg cabin.Config, seed int64) (*Env, error) {
	scene, err := cabin.NewScene(cfg)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	return &Env{
		Scene:  scene,
		HW:     csi.DefaultHardware(rng.Fork()),
		Timing: wifi.CleanTiming(),
		RNG:    rng,
	}, nil
}

// PhaseAt synthesizes one sanitized CSI phase observation of the
// cabin at the given state: clean channel → hardware corruption →
// two-antenna sanitizer.
func (e *Env) PhaseAt(st cabin.State) (float64, error) {
	e.csiBuf = e.Scene.CleanCSI(st, e.csiBuf)
	frame := e.HW.Corrupt(st.Time, e.csiBuf)
	return csi.Sanitize(frame, 0, 1)
}

// FrameAt synthesizes the raw corrupted CSI frame at the given state —
// what the CSI tool reports before sanitizing. Callers that want the
// sanitized phase directly should use PhaseAt.
func (e *Env) FrameAt(st cabin.State) *csi.Frame {
	e.csiBuf = e.Scene.CleanCSI(st, e.csiBuf)
	return e.HW.Corrupt(st.Time, e.csiBuf)
}

// PhaseSeries samples the sanitized phase over a scenario at the
// link's packet arrival times, returning the measurement series —
// what the receiver's CSI tool would log.
func (e *Env) PhaseSeries(sc *driver.Scenario) (dsp.Series, error) {
	var out dsp.Series
	for _, t := range e.Timing.ArrivalTimes(e.RNG.Fork(), sc.Duration) {
		phi, err := e.PhaseAt(sc.State(t))
		if err != nil {
			return nil, err
		}
		out = append(out, dsp.Sample{T: t, V: phi})
	}
	return out, nil
}

// ProfileOptions configures CollectProfile.
type ProfileOptions struct {
	Positions    int     // head positions to profile (paper default 10)
	PerPositionS float64 // sweep seconds per position (paper default 10)
	SweepDPS     float64 // profiling head-turn speed (0 = profile habit)
	MatchRateHz  float64 // 0 = core.DefaultMatchRateHz
	TruthRateHz  float64 // ground-truth label rate (0 = 60 Hz)
	LabelNoise   float64 // std-dev (deg) of ground-truth label noise
}

// DefaultProfileOptions mirrors Sec. 5.1: 10 positions × 10 s.
func DefaultProfileOptions() ProfileOptions {
	return ProfileOptions{
		Positions:    10,
		PerPositionS: 8,
		SweepDPS:     0,
		TruthRateHz:  60,
		LabelNoise:   0.5,
	}
}

// CollectProfile runs a full position-orientation joint profiling
// session (Sec. 3.3) for the given driver and returns the profile
// plus the wall-clock profiling duration.
func (e *Env) CollectProfile(p driver.Profile, opt ProfileOptions) (*core.Profile, float64, error) {
	if opt.Positions < 1 {
		opt.Positions = 10
	}
	if opt.PerPositionS <= 0 {
		opt.PerPositionS = 10
	}
	truthRate := opt.TruthRateHz
	if truthRate <= 0 {
		truthRate = 60
	}
	sc, segs := driver.SweepScenario(p, opt.Positions, opt.PerPositionS, opt.SweepDPS)
	prof := core.NewProfiler(opt.MatchRateHz)
	labelRNG := e.RNG.Fork()

	arrivals := e.Timing.ArrivalTimes(e.RNG.Fork(), sc.Duration)
	ai := 0
	for _, seg := range segs {
		prof.StartPosition(seg.Position)
		// CSI stream across the whole segment.
		for ai < len(arrivals) && arrivals[ai] < seg.End {
			t := arrivals[ai]
			ai++
			if t < seg.Start {
				continue
			}
			phi, err := e.PhaseAt(sc.State(t))
			if err != nil {
				return nil, 0, err
			}
			prof.AddPhase(t, phi)
		}
		// Ground-truth labels on their own clock.
		for t := seg.Start; t < seg.End; t += 1 / truthRate {
			yaw := sc.HeadYaw.At(t)
			if opt.LabelNoise > 0 {
				yaw += labelRNG.Normal(0, opt.LabelNoise)
			}
			prof.AddTruth(t, yaw)
		}
		if !prof.FingerprintCaptured() {
			// The settle phase should have stabilized; as a fallback
			// take the phase at the settle midpoint directly.
			mid := (seg.Start + seg.SettleEnd) / 2
			phi, err := e.PhaseAt(sc.State(mid))
			if err != nil {
				return nil, 0, err
			}
			prof.MarkFingerprint(phi)
		}
		if err := prof.EndPosition(); err != nil {
			return nil, 0, err
		}
	}
	profile, err := prof.Build()
	if err != nil {
		return nil, 0, err
	}
	return profile, sc.Duration, nil
}

// imuRate is the phone IMU sampling rate fed to the pipeline.
const imuRate = 100.0

// TrackOptions configures a tracking run.
type TrackOptions struct {
	Pipeline core.PipelineConfig
	Horizons []float64 // forecast horizons to score (seconds)
	// Camera enables the fallback camera feed.
	Camera bool
	// HeadsetSlipProb adds ground-truth headset slip (footnote 5).
	HeadsetSlipProb float64
}

// RunResult aggregates a tracking run.
type RunResult struct {
	// Errors is the per-estimate absolute angular deviation (deg)
	// against ground truth — the paper's performance metric.
	Errors []float64
	// ForecastErrors[i] aligns with Horizons[i].
	Horizons       []float64
	ForecastErrors [][]float64
	Estimates      []core.Estimate
	// SampleRateHz is the achieved CSI sampling rate.
	SampleRateHz float64
	// MaxGapS is the largest CSI inter-frame gap observed.
	MaxGapS float64
	// FallbackFraction is the fraction of estimates served by the
	// camera fallback.
	FallbackFraction float64
}

// ErrCDF returns the empirical CDF of the tracking errors.
func (r *RunResult) ErrCDF() *stats.CDF { return stats.NewCDF(r.Errors) }

// Track runs a scenario through the full pipeline and scores it.
func (e *Env) Track(profile *core.Profile, sc *driver.Scenario, opt TrackOptions) (*RunResult, error) {
	pl, err := core.NewPipeline(profile, opt.Pipeline)
	if err != nil {
		return nil, err
	}
	phone := imu.NewPhoneIMU(e.RNG.Fork())
	var cam *camera.Tracker
	if opt.Camera {
		cam = camera.NewTracker(e.RNG.Fork())
	}

	res := &RunResult{Horizons: opt.Horizons}
	res.ForecastErrors = make([][]float64, len(opt.Horizons))

	arrivals := e.Timing.ArrivalTimes(e.RNG.Fork(), sc.Duration)
	if len(arrivals) > 1 {
		res.SampleRateHz = float64(len(arrivals)-1) / (arrivals[len(arrivals)-1] - arrivals[0])
		for i := 1; i < len(arrivals); i++ {
			if g := arrivals[i] - arrivals[i-1]; g > res.MaxGapS {
				res.MaxGapS = g
			}
		}
	}

	nextIMU := 0.0
	fallbacks := 0
	for _, t := range arrivals {
		// Side feeds in time order.
		for nextIMU <= t {
			pl.PushIMU(phone.Sample(nextIMU, sc.CarYawRateDPS(nextIMU), sc.SpeedMPS))
			if cam != nil {
				lag := cam.Latency()
				truthYaw := sc.HeadYaw.At(nextIMU - lag)
				truthRate := sc.TrueYawRateDPS(nextIMU - lag)
				if est, ok := cam.Sample(nextIMU, truthYaw, truthRate); ok {
					pl.PushCamera(est)
				}
			}
			nextIMU += 1 / imuRate
		}

		phi, err := e.PhaseAt(sc.State(t))
		if err != nil {
			return nil, err
		}
		est, ok := pl.PushCSI(t, phi)
		if !ok {
			continue
		}
		truth := sc.HeadYaw.At(est.Time)
		res.Errors = append(res.Errors, geom.AngleDistDeg(est.Yaw, truth))
		res.Estimates = append(res.Estimates, est)
		if est.Source == core.SourceCamera {
			fallbacks++
		}
		for hi, h := range opt.Horizons {
			pred := pl.Tracker().Forecast(est, h)
			future := sc.HeadYaw.At(est.Time + h)
			res.ForecastErrors[hi] = append(res.ForecastErrors[hi], geom.AngleDistDeg(pred, future))
		}
	}
	if n := len(res.Estimates); n > 0 {
		res.FallbackFraction = float64(fallbacks) / float64(n)
	}
	if math.IsNaN(res.SampleRateHz) {
		res.SampleRateHz = 0
	}
	return res, nil
}
