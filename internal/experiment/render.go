package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Render writes a figure result as readable text: title, the paper's
// claim, per-series sparklines, and the measured notes.
func (r *FigureResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", r.ID, r.Title)
	fmt.Fprintf(w, "   paper: %s\n", r.PaperClaim)
	for _, s := range r.Series {
		// CDF series (probability ramps 0→1) are better summarized by
		// their quantile curve: error value vs cumulative probability.
		if isCDF(s) {
			fmt.Fprintf(w, "   %-26s %s (error° by quantile)\n", s.Name, sparkline(s.X, 48))
		} else {
			fmt.Fprintf(w, "   %-26s %s\n", s.Name, sparkline(s.Y, 48))
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   measured: %s\n", n)
	}
	fmt.Fprintln(w)
}

// isCDF reports whether a series looks like an empirical CDF: Y runs
// monotonically from 0 to 1.
func isCDF(s Series) bool {
	n := len(s.Y)
	if n < 2 || len(s.X) != n {
		return false
	}
	if s.Y[0] != 0 || s.Y[n-1] != 1 {
		return false
	}
	for i := 1; i < n; i++ {
		if s.Y[i] < s.Y[i-1] {
			return false
		}
	}
	return true
}

// sparkline compresses a series into a fixed-width unicode strip.
func sparkline(ys []float64, width int) string {
	if len(ys) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		if math.IsNaN(y) {
			continue
		}
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	if width > len(ys) {
		width = len(ys)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		idx := i * len(ys) / width
		y := ys[idx]
		var lvl int
		if hi > lo {
			lvl = int((y - lo) / (hi - lo) * float64(len(levels)-1))
		}
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= len(levels) {
			lvl = len(levels) - 1
		}
		b.WriteRune(levels[lvl])
	}
	return fmt.Sprintf("[%s] %.3g..%.3g", b.String(), lo, hi)
}
