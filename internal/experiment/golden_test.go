package experiment

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/imu"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata golden files")

// goldenEstimate is one pipeline estimate serialized for the golden
// trace. JSON float64 round-trips are exact for finite values, so the
// file pins the estimates bit for bit.
type goldenEstimate struct {
	Time      float64 `json:"time"`
	Yaw       float64 `json:"yaw"`
	Source    int     `json:"source"`
	Position  int     `json:"position"`
	MatchDist float64 `json:"match_dist"`
}

// goldenTrace runs the canonical seeded scenario through the full
// pipeline — profiling, steering identifier, DTW tracking — and
// returns every estimate it emits. Everything downstream of the seed
// is deterministic, so this sequence is a fingerprint of the whole
// numeric stack (sanitizer, DSP, DTW, tracker, steering gate).
func goldenTrace(t *testing.T) []goldenEstimate {
	t.Helper()
	env, err := NewEnv(cabin.DefaultConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	popt := DefaultProfileOptions()
	popt.Positions = 5
	popt.PerPositionS = 3
	profile, _, err := env.CollectProfile(driver.DriverA(), popt)
	if err != nil {
		t.Fatal(err)
	}
	sc := driver.DrivingScenario(env.RNG.Fork(), driver.DriverA(), 10, driver.GlanceOptions{
		Steering:       true,
		PositionJitter: 0.008,
	})
	pl, err := core.NewPipeline(profile, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	phone := imu.NewPhoneIMU(env.RNG.Fork())

	var trace []goldenEstimate
	nextIMU := 0.0
	for _, ts := range env.Timing.ArrivalTimes(env.RNG.Fork(), sc.Duration) {
		for nextIMU <= ts {
			pl.PushIMU(phone.Sample(nextIMU, sc.CarYawRateDPS(nextIMU), sc.SpeedMPS))
			nextIMU += 0.01
		}
		phi, err := env.PhaseAt(sc.State(ts))
		if err != nil {
			t.Fatal(err)
		}
		if est, ok := pl.PushCSI(ts, phi); ok {
			trace = append(trace, goldenEstimate{
				Time: est.Time, Yaw: est.Yaw, Source: int(est.Source),
				Position: est.Position, MatchDist: est.MatchDist,
			})
		}
	}
	if len(trace) == 0 {
		t.Fatal("golden scenario produced no estimates")
	}
	return trace
}

// TestGoldenTrace locks the end-to-end estimate stream of a fixed
// seeded scenario against testdata/golden_trace.json, bit for bit.
// Any change to the numeric pipeline — even one ULP — fails this test;
// run with -update to accept an intentional change and review the
// resulting diff.
func TestGoldenTrace(t *testing.T) {
	got := goldenTrace(t)
	path := filepath.Join("testdata", "golden_trace.json")

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d estimates)", path, len(got))
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/experiment -run TestGoldenTrace -update to create it)", err)
	}
	var want []goldenEstimate
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("trace has %d estimates, golden has %d", len(got), len(want))
	}
	bits := math.Float64bits
	for i := range want {
		g, w := got[i], want[i]
		if bits(g.Time) != bits(w.Time) || bits(g.Yaw) != bits(w.Yaw) ||
			bits(g.MatchDist) != bits(w.MatchDist) ||
			g.Source != w.Source || g.Position != w.Position {
			t.Fatalf("estimate %d diverges from golden:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestGoldenTraceDeterministic guards the guard: two fresh runs of the
// golden scenario in one process must agree exactly, or the golden
// file would be flaky by construction.
func TestGoldenTraceDeterministic(t *testing.T) {
	a, b := goldenTrace(t), goldenTrace(t)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("estimate %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
