package experiment

import (
	"bytes"
	"strings"
	"testing"

	"vihot/internal/cabin"
	"vihot/internal/core"
	"vihot/internal/driver"
	"vihot/internal/stats"
	"vihot/internal/wifi"
)

// tinyOpt keeps experiment tests fast.
func tinyOpt() Options {
	o := DefaultOptions()
	o.Seed = 3
	o.RuntimeS = 8
	o.Profile.Positions = 4
	o.Profile.PerPositionS = 4
	o.EstimateEveryS = 0.04
	return o
}

func tinyEnv(t *testing.T) (*Env, *core.Profile) {
	t.Helper()
	env, prof, err := profiledEnv(cabin.DefaultConfig(), driver.DriverA(), tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	return env, prof
}

func TestNewEnvRejectsBadConfig(t *testing.T) {
	if _, err := NewEnv(cabin.Config{Layout: cabin.Layout(42)}, 1); err == nil {
		t.Error("bad layout accepted")
	}
}

func TestPhaseSeriesCoversScenario(t *testing.T) {
	env, err := NewEnv(cabin.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 3, 110)
	s, err := env.PhaseSeries(sc)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanRate() < 400 {
		t.Errorf("phase rate = %v Hz", s.MeanRate())
	}
	if !s.IsSorted() {
		t.Error("phase series unsorted")
	}
}

func TestCollectProfileShape(t *testing.T) {
	env, err := NewEnv(cabin.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultProfileOptions()
	opt.Positions = 3
	opt.PerPositionS = 4
	prof, dur, err := env.CollectProfile(driver.DriverA(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Positions) != 3 {
		t.Errorf("positions = %d", len(prof.Positions))
	}
	if dur <= 12 || dur > 30 {
		t.Errorf("profiling duration = %v", dur)
	}
}

func TestTrackProducesScoredEstimates(t *testing.T) {
	env, prof := tinyEnv(t)
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 8, 115)
	res, err := env.Track(prof, sc, TrackOptions{Pipeline: core.DefaultPipelineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != len(res.Estimates) {
		t.Error("errors and estimates misaligned")
	}
	if len(res.Errors) < 50 {
		t.Fatalf("too few estimates: %d", len(res.Errors))
	}
	if res.SampleRateHz < 400 {
		t.Errorf("sample rate = %v", res.SampleRateHz)
	}
	if res.ErrCDF().N() != len(res.Errors) {
		t.Error("CDF sample count mismatch")
	}
}

func TestTrackForecastHorizons(t *testing.T) {
	env, prof := tinyEnv(t)
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 8, 115)
	res, err := env.Track(prof, sc, TrackOptions{
		Pipeline: core.DefaultPipelineConfig(),
		Horizons: []float64{0.1, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ForecastErrors) != 2 {
		t.Fatalf("forecast groups = %d", len(res.ForecastErrors))
	}
	for i := range res.ForecastErrors {
		if len(res.ForecastErrors[i]) != len(res.Errors) {
			t.Errorf("horizon %d has %d errors, want %d", i,
				len(res.ForecastErrors[i]), len(res.Errors))
		}
	}
	// Longer horizons should not be dramatically better on average.
	m0 := stats.Mean(res.ForecastErrors[0])
	m1 := stats.Mean(res.ForecastErrors[1])
	if m1 < m0/2 {
		t.Errorf("300 ms forecast (%v) suspiciously beats 100 ms (%v)", m1, m0)
	}
}

func TestInterferenceReducesRate(t *testing.T) {
	env, prof := tinyEnv(t)
	sc, _ := driver.SweepScenario(driver.DriverA(), 1, 8, 115)
	clean, err := env.Track(prof, sc, TrackOptions{Pipeline: core.DefaultPipelineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	env.Timing = wifi.InterferedTiming()
	dirty, err := env.Track(prof, sc, TrackOptions{Pipeline: core.DefaultPipelineConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if dirty.SampleRateHz >= clean.SampleRateHz {
		t.Errorf("interference rate %v >= clean %v", dirty.SampleRateHz, clean.SampleRateHz)
	}
}

func TestFigureGeneratorsRunAndRender(t *testing.T) {
	// Smoke every cheap generator end to end; the expensive ones get
	// scaled-down options.
	opt := tinyOpt()
	gens := map[string]func(Options) (*FigureResult, error){
		"fig02":    Fig02HeadAxes,
		"fig03":    Fig03PhaseVsOrientation,
		"fig08":    Fig08Steering,
		"fig11":    Fig11LayoutCurves,
		"fig14":    Fig14SpeedCurves,
		"fig15":    Fig15MicroMotions,
		"fig16":    Fig16AntennaVibration,
		"sampling": SamplingRate,
	}
	for name, gen := range gens {
		r, err := gen(opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.ID == "" || r.Title == "" || r.PaperClaim == "" {
			t.Errorf("%s: incomplete metadata: %+v", name, r)
		}
		if len(r.Series) == 0 {
			t.Errorf("%s: no series", name)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		out := buf.String()
		if !strings.Contains(out, r.ID) || !strings.Contains(out, "paper:") {
			t.Errorf("%s: render missing sections:\n%s", name, out)
		}
	}
}

func TestFig10EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive figure")
	}
	r, err := Fig10Prediction(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	// First series is mean-vs-horizon; it must be roughly increasing.
	mean := r.Series[0]
	if len(mean.Y) != 5 {
		t.Fatalf("horizons = %d", len(mean.Y))
	}
	if mean.Y[4] < mean.Y[0] {
		t.Errorf("forecast error decreased with horizon: %v", mean.Y)
	}
}

func TestSparkline(t *testing.T) {
	if sparkline(nil, 10) != "" {
		t.Error("empty sparkline must be empty")
	}
	got := sparkline([]float64{0, 1, 2, 3}, 8)
	if !strings.Contains(got, "0..3") {
		t.Errorf("sparkline missing range: %q", got)
	}
	flat := sparkline([]float64{5, 5, 5}, 4)
	if flat == "" {
		t.Error("flat sparkline must render")
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	n := o.normalize()
	if n.RuntimeS != 60 || n.Profile.Positions == 0 {
		t.Errorf("normalize = %+v", n)
	}
	if o.RuntimeOr(30) != 30 {
		t.Error("RuntimeOr default")
	}
	o.RuntimeS = 5
	if o.RuntimeOr(30) != 5 {
		t.Error("RuntimeOr set value")
	}
}

func TestQuickIsCheaper(t *testing.T) {
	q, d := Quick(), DefaultOptions()
	if q.RuntimeS >= d.RuntimeS || q.Profile.PerPositionS >= d.Profile.PerPositionS {
		t.Error("Quick not cheaper than default")
	}
}

func TestExtensionGeneratorsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive extensions")
	}
	opt := tinyOpt()
	for _, g := range ExtensionGenerators() {
		r, err := g.Run(opt)
		if err != nil {
			t.Fatalf("%s: %v", g.ID, err)
		}
		if len(r.Series) < 2 {
			t.Errorf("%s: want ≥2 series, got %d", g.ID, len(r.Series))
		}
		if r.ID != g.ID {
			t.Errorf("generator id %q != result id %q", g.ID, r.ID)
		}
	}
}

func TestPooledDerivesDistinctSeeds(t *testing.T) {
	opt := tinyOpt()
	opt.Repeats = 3
	var seeds []int64
	_, _, err := pooled(opt, func(o Options) (*RunResult, error) {
		seeds = append(seeds, o.Seed)
		return &RunResult{Errors: []float64{1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("repeats = %d", len(seeds))
	}
	if seeds[0] == seeds[1] || seeds[1] == seeds[2] {
		t.Error("pooled repeats share seeds")
	}
}

func TestPooledConcatenatesErrors(t *testing.T) {
	opt := tinyOpt()
	opt.Repeats = 2
	errs, last, err := pooled(opt, func(o Options) (*RunResult, error) {
		return &RunResult{Errors: []float64{1, 2}, SampleRateHz: 500}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 4 {
		t.Errorf("pooled errors = %d", len(errs))
	}
	if last.SampleRateHz != 500 {
		t.Error("last result missing")
	}
}

func TestIsCDF(t *testing.T) {
	good := Series{X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}}
	if !isCDF(good) {
		t.Error("valid CDF rejected")
	}
	bad := Series{X: []float64{0, 1, 2}, Y: []float64{0, 0.9, 0.5}}
	if isCDF(bad) {
		t.Error("non-monotone accepted")
	}
	if isCDF(Series{X: []float64{1}, Y: []float64{1}}) {
		t.Error("single point accepted")
	}
}
