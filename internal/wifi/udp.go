package wifi

import (
	"fmt"
	"net"
	"time"

	"vihot/internal/csi"
	"vihot/internal/imu"
)

// Sender streams CSI frames and IMU readings over UDP — the role of
// the phone's iperf client in the prototype (Sec. 4). It is safe for
// use from one goroutine.
type Sender struct {
	conn *net.UDPConn
	buf  []byte
}

// Dial connects a Sender to the receiver's address, e.g.
// "127.0.0.1:9340".
func Dial(addr string) (*Sender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wifi: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("wifi: dial %q: %w", addr, err)
	}
	return &Sender{conn: conn, buf: make([]byte, 0, 2048)}, nil
}

// SendCSI transmits one CSI frame.
func (s *Sender) SendCSI(f *csi.Frame) error {
	b, err := EncodeCSI(s.buf[:0], f)
	if err != nil {
		return err
	}
	s.buf = b[:0]
	_, err = s.conn.Write(b)
	return err
}

// SendIMU transmits one IMU reading.
func (s *Sender) SendIMU(r *imu.Reading) error {
	b := EncodeIMU(s.buf[:0], r)
	s.buf = b[:0]
	_, err := s.conn.Write(b)
	return err
}

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// Receiver listens for the probe stream — the laptop/head-unit side.
type Receiver struct {
	conn *net.UDPConn
	buf  []byte
}

// Listen binds a Receiver. Pass ":0" to let the kernel pick a port;
// Addr reports the bound address.
func Listen(addr string) (*Receiver, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wifi: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("wifi: listen %q: %w", addr, err)
	}
	return &Receiver{conn: conn, buf: make([]byte, 64*1024)}, nil
}

// Addr returns the bound local address.
func (r *Receiver) Addr() net.Addr { return r.conn.LocalAddr() }

// Recv blocks until one datagram arrives (or the deadline expires)
// and decodes it. A zero timeout blocks indefinitely.
func (r *Receiver) Recv(timeout time.Duration) (*Packet, error) {
	if timeout > 0 {
		if err := r.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	} else {
		if err := r.conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	n, _, err := r.conn.ReadFromUDP(r.buf)
	if err != nil {
		return nil, err
	}
	return Decode(r.buf[:n])
}

// Close releases the socket.
func (r *Receiver) Close() error { return r.conn.Close() }
