package wifi

import (
	"errors"
	"fmt"
	"net"
	"time"

	"vihot/internal/csi"
	"vihot/internal/imu"
)

// Receive errors fall into three classes a serving loop must treat
// differently: deadline expiries (keep polling), undecodable datagrams
// (count and keep reading — the socket is fine), and everything else
// (the socket itself failed; back off or give up). Recv/RecvFrom wrap
// their errors so callers can branch with errors.Is / the predicates
// below instead of string matching.
var (
	// ErrTimeout marks a receive deadline expiry.
	ErrTimeout = errors.New("wifi: receive timed out")
	// ErrDecode marks a datagram that arrived but failed to decode;
	// the underlying wire error (ErrShortPacket, ErrBadMagic, …)
	// remains in the chain.
	ErrDecode = errors.New("wifi: undecodable datagram")
)

// IsTimeout reports whether err is a receive deadline expiry — the
// caller should simply poll again.
func IsTimeout(err error) bool { return errors.Is(err, ErrTimeout) }

// IsDecode reports whether err is a malformed-datagram error — the
// socket is healthy and the next read may succeed.
func IsDecode(err error) bool { return errors.Is(err, ErrDecode) }

// IsFatal reports whether err means the socket itself is broken (for
// example errors.Is(err, net.ErrClosed)): retrying the same call
// without backing off will spin. Decode errors and timeouts are not
// fatal.
func IsFatal(err error) bool {
	return err != nil && !IsTimeout(err) && !IsDecode(err)
}

// wrapRecvErr classifies a socket read error.
func wrapRecvErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}

// Sender streams CSI frames and IMU readings over UDP — the role of
// the phone's iperf client in the prototype (Sec. 4). It is safe for
// use from one goroutine.
type Sender struct {
	conn *net.UDPConn
	buf  []byte
}

// Dial connects a Sender to the receiver's address, e.g.
// "127.0.0.1:9340".
func Dial(addr string) (*Sender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wifi: resolve %q: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("wifi: dial %q: %w", addr, err)
	}
	return &Sender{conn: conn, buf: make([]byte, 0, 2048)}, nil
}

// SendCSI transmits one CSI frame.
func (s *Sender) SendCSI(f *csi.Frame) error {
	b, err := EncodeCSI(s.buf[:0], f)
	if err != nil {
		return err
	}
	s.buf = b[:0]
	_, err = s.conn.Write(b)
	return err
}

// SendIMU transmits one IMU reading.
func (s *Sender) SendIMU(r *imu.Reading) error {
	b := EncodeIMU(s.buf[:0], r)
	s.buf = b[:0]
	_, err := s.conn.Write(b)
	return err
}

// SendRaw transmits one already-encoded datagram verbatim. It is the
// raw hook fault injectors (internal/faults) use to deliver mutated,
// duplicated, or reordered packets without re-encoding them.
func (s *Sender) SendRaw(b []byte) error {
	_, err := s.conn.Write(b)
	return err
}

// LocalAddr returns the sender's bound local address — the identity a
// receiver keys multi-driver sessions on (cmd/vihot-serve).
func (s *Sender) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// Receiver listens for the probe stream — the laptop/head-unit side.
type Receiver struct {
	conn   *net.UDPConn
	buf    []byte
	pooled bool
	stats  recvStats
}

// Listen binds a Receiver. Pass ":0" to let the kernel pick a port;
// Addr reports the bound address.
func Listen(addr string) (*Receiver, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("wifi: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("wifi: listen %q: %w", addr, err)
	}
	return &Receiver{conn: conn, buf: make([]byte, 64*1024)}, nil
}

// Addr returns the bound local address.
func (r *Receiver) Addr() net.Addr { return r.conn.LocalAddr() }

// SetReadBuffer asks the kernel for a receive buffer of the given
// size. A receiver aggregating many phones' probe streams (≈500
// frames/s each) should raise this well above the default, or bursts
// are dropped by the kernel before user space ever sees them.
func (r *Receiver) SetReadBuffer(bytes int) error { return r.conn.SetReadBuffer(bytes) }

// SetPooledDecode switches Recv/RecvFrom to DecodePooled: CSI frames
// are drawn from the csi frame pool and the caller takes over the
// release obligation (csi.PutFrame, or hand the frame to a session
// manager running with Config.RecycleFrames). Call before the receive
// loop starts; the Receiver itself is single-goroutine.
func (r *Receiver) SetPooledDecode(on bool) { r.pooled = on }

// Recv blocks until one datagram arrives (or the deadline expires)
// and decodes it. A zero timeout blocks indefinitely.
func (r *Receiver) Recv(timeout time.Duration) (*Packet, error) {
	pkt, _, err := r.RecvFrom(timeout)
	return pkt, err
}

// RecvFrom is Recv plus the datagram's source address, so a receiver
// serving several phones at once can demultiplex them into sessions
// (one phone per car, one car per session).
func (r *Receiver) RecvFrom(timeout time.Duration) (*Packet, *net.UDPAddr, error) {
	if timeout > 0 {
		if err := r.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, nil, err
		}
	} else {
		if err := r.conn.SetReadDeadline(time.Time{}); err != nil {
			return nil, nil, err
		}
	}
	n, addr, err := r.conn.ReadFromUDP(r.buf)
	if err != nil {
		err = wrapRecvErr(err)
		if IsTimeout(err) {
			r.stats.timeouts.Add(1)
		}
		return nil, nil, err
	}
	r.stats.bytes.Add(uint64(n))
	dec := Decode
	if r.pooled {
		dec = DecodePooled
	}
	pkt, err := dec(r.buf[:n])
	if err != nil {
		r.stats.decodeErr.Add(1)
		return nil, addr, fmt.Errorf("%w: %w", ErrDecode, err)
	}
	r.stats.packets.Add(1)
	return pkt, addr, nil
}

// Close releases the socket.
func (r *Receiver) Close() error { return r.conn.Close() }
