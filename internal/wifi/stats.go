package wifi

import "sync/atomic"

// RecvStats is a snapshot of one Receiver's traffic. The receiver
// itself is driven by one goroutine, but scrapes happen from an HTTP
// handler's goroutine, so the live tallies are atomics and Stats reads
// them without coordination (fields may be skewed by a packet relative
// to each other — fine for monitoring).
type RecvStats struct {
	Packets      uint64 // datagrams decoded successfully
	Bytes        uint64 // payload bytes of datagrams read off the socket
	Timeouts     uint64 // receive deadline expiries
	DecodeErrors uint64 // datagrams read but undecodable
}

// recvStats holds the live atomic tallies embedded in Receiver.
type recvStats struct {
	packets   atomic.Uint64
	bytes     atomic.Uint64
	timeouts  atomic.Uint64
	decodeErr atomic.Uint64
}

// Stats snapshots the receiver's traffic counters. Safe to call
// concurrently with RecvFrom — this is the hook cmd/vihot-serve binds
// to obs.Registry.CounterFunc for the vihot_wifi_recv_* series.
func (r *Receiver) Stats() RecvStats {
	return RecvStats{
		Packets:      r.stats.packets.Load(),
		Bytes:        r.stats.bytes.Load(),
		Timeouts:     r.stats.timeouts.Load(),
		DecodeErrors: r.stats.decodeErr.Load(),
	}
}
