package wifi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"vihot/internal/csi"
	"vihot/internal/imu"
)

// Wire format for the phone→receiver probe stream. Every datagram is:
//
//	offset  size  field
//	0       4     magic "VHOT"
//	4       1     version (1)
//	5       1     type (1 = CSI frame, 2 = IMU reading)
//	6       8     timestamp, float64 seconds, big endian
//	14      …     type-specific payload
//
// CSI payload: uint8 antennas, uint8 subcarriers, then antennas ×
// subcarriers complex values as two float32s (re, im).
// IMU payload: gyroZ float32, accelLat float32.
//
// The format mirrors how the prototype UDP-streams IMU readings along
// with the dummy iperf packets (Sec. 4).
const (
	Magic       = "VHOT"
	Version     = 1
	TypeCSI     = 1
	TypeIMU     = 2
	headerLen   = 14
	maxAntennas = 8
	maxSubcarry = 128
)

// Wire format errors.
var (
	ErrShortPacket   = errors.New("wifi: packet too short")
	ErrBadMagic      = errors.New("wifi: bad magic")
	ErrBadVersion    = errors.New("wifi: unsupported version")
	ErrBadType       = errors.New("wifi: unknown packet type")
	ErrBadShape      = errors.New("wifi: implausible antenna/subcarrier counts")
	ErrTrailingBytes = errors.New("wifi: trailing bytes after payload")
)

// Packet is a decoded datagram: exactly one of CSI or IMU is set.
type Packet struct {
	Type int
	CSI  *csi.Frame
	IMU  *imu.Reading
}

// EncodeCSI serializes a CSI frame, appending to dst.
func EncodeCSI(dst []byte, f *csi.Frame) ([]byte, error) {
	na, ns := f.NAntennas(), f.NSubcarriers()
	if na < 1 || na > maxAntennas || ns < 1 || ns > maxSubcarry {
		return nil, ErrBadShape
	}
	dst = appendHeader(dst, TypeCSI, f.Time)
	dst = append(dst, byte(na), byte(ns))
	for a := 0; a < na; a++ {
		if len(f.H[a]) != ns {
			return nil, ErrBadShape
		}
		for k := 0; k < ns; k++ {
			h := f.H[a][k]
			dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(real(h))))
			dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(imag(h))))
		}
	}
	return dst, nil
}

// EncodeIMU serializes an IMU reading, appending to dst.
func EncodeIMU(dst []byte, r *imu.Reading) []byte {
	dst = appendHeader(dst, TypeIMU, r.Time)
	dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(r.GyroZ)))
	dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(r.AccelLat)))
	return dst
}

func appendHeader(dst []byte, typ byte, t float64) []byte {
	dst = append(dst, Magic...)
	dst = append(dst, Version, typ)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(t))
	return dst
}

// Decode parses one datagram. Every CSI frame it returns is freshly
// allocated and owned by the caller.
func Decode(b []byte) (*Packet, error) { return decode(b, false) }

// DecodePooled is Decode drawing CSI frame storage from the csi frame
// pool instead of the heap — the zero-steady-state-allocation ingest
// path. The caller owns the returned frame exclusively and must
// release it with csi.PutFrame once done (serve.Config.RecycleFrames
// arranges that when the frame is pushed into a session manager).
// IMU packets are unaffected.
func DecodePooled(b []byte) (*Packet, error) { return decode(b, true) }

func decode(b []byte, pooled bool) (*Packet, error) {
	if len(b) < headerLen {
		return nil, ErrShortPacket
	}
	if string(b[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if b[4] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, b[4])
	}
	typ := b[5]
	t := math.Float64frombits(binary.BigEndian.Uint64(b[6:14]))
	body := b[headerLen:]
	switch typ {
	case TypeCSI:
		return decodeCSI(t, body, pooled)
	case TypeIMU:
		return decodeIMU(t, body)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, typ)
	}
}

func decodeCSI(t float64, body []byte, pooled bool) (*Packet, error) {
	if len(body) < 2 {
		return nil, ErrShortPacket
	}
	na, ns := int(body[0]), int(body[1])
	if na < 1 || na > maxAntennas || ns < 1 || ns > maxSubcarry {
		return nil, ErrBadShape
	}
	need := na * ns * 8
	body = body[2:]
	// The payload must be exactly the size the shape header implies.
	// Tolerating a long tail would let a bit-corrupted na/ns smuggle a
	// truncated-then-padded frame through as a plausible smaller one —
	// EncodeCSI never produces a tail, so any tail is corruption. (IMU
	// payloads have no shape field to corrupt, so decodeIMU stays
	// tolerant of historical padded senders.)
	if len(body) < need {
		return nil, ErrShortPacket
	}
	if len(body) > need {
		return nil, ErrTrailingBytes
	}
	var f *csi.Frame
	if pooled {
		f = csi.GetFrame(na, ns)
		f.Time = t
	} else {
		f = &csi.Frame{Time: t, H: make([][]complex128, na)}
		for a := 0; a < na; a++ {
			f.H[a] = make([]complex128, ns)
		}
	}
	off := 0
	for a := 0; a < na; a++ {
		row := f.H[a]
		for k := 0; k < ns; k++ {
			re := math.Float32frombits(binary.BigEndian.Uint32(body[off:]))
			im := math.Float32frombits(binary.BigEndian.Uint32(body[off+4:]))
			row[k] = complex(float64(re), float64(im))
			off += 8
		}
	}
	return &Packet{Type: TypeCSI, CSI: f}, nil
}

func decodeIMU(t float64, body []byte) (*Packet, error) {
	if len(body) < 8 {
		return nil, ErrShortPacket
	}
	r := &imu.Reading{
		Time:     t,
		GyroZ:    float64(math.Float32frombits(binary.BigEndian.Uint32(body[0:]))),
		AccelLat: float64(math.Float32frombits(binary.BigEndian.Uint32(body[4:]))),
	}
	return &Packet{Type: TypeIMU, IMU: r}, nil
}
