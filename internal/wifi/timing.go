// Package wifi models the link that carries the CSI probe stream: the
// CSMA packet-timing process whose randomness forces resampling
// (Sec. 3.4.3), the throughput collapse under interfering traffic that
// degrades tracking in Fig. 17d, an NTP-style clock-offset model for
// phone↔receiver synchronization, and a real UDP transport with a
// compact wire format for streaming CSI and IMU data between
// processes.
package wifi

import (
	"vihot/internal/stats"
)

// TimingModel describes the distribution of inter-packet intervals of
// the iperf-style probe stream. WiFi CSMA makes intervals random:
// most packets go out back-to-back at the target rate, but channel
// contention occasionally inserts long backoff gaps.
type TimingModel struct {
	// BaseInterval is the minimum spacing between packets (seconds).
	BaseInterval float64
	// JitterMean is the mean of the exponential jitter added to every
	// interval.
	JitterMean float64
	// BackoffProb is the per-packet probability of a contention
	// backoff gap.
	BackoffProb float64
	// BackoffMin/BackoffMax bound the uniform backoff gap length.
	BackoffMin, BackoffMax float64
}

// CleanTiming reproduces the paper's uncontended link: ≈ 500 frames/s
// with a 34 ms maximum frame interval (Sec. 5.3.5).
func CleanTiming() TimingModel {
	return TimingModel{
		BaseInterval: 0.0016,
		JitterMean:   0.0003,
		BackoffProb:  0.005,
		BackoffMin:   0.008,
		BackoffMax:   0.034,
	}
}

// InterferedTiming reproduces the link sharing the channel with a
// video stream from a roadside AP: the CSI sampling rate drops to
// ≈ 400 Hz and the maximum frame interval grows to 49 ms.
func InterferedTiming() TimingModel {
	return TimingModel{
		BaseInterval: 0.0017,
		JitterMean:   0.0004,
		BackoffProb:  0.012,
		BackoffMin:   0.01,
		BackoffMax:   0.049,
	}
}

// NextInterval draws one inter-packet interval.
func (m TimingModel) NextInterval(rng *stats.RNG) float64 {
	d := m.BaseInterval + rng.Exp(m.JitterMean)
	if m.BackoffProb > 0 && rng.Bool(m.BackoffProb) {
		d += rng.Uniform(m.BackoffMin, m.BackoffMax)
	}
	return d
}

// ArrivalTimes generates packet arrival timestamps covering [0, dur).
func (m TimingModel) ArrivalTimes(rng *stats.RNG, dur float64) []float64 {
	var ts []float64
	t := m.NextInterval(rng)
	for t < dur {
		ts = append(ts, t)
		t += m.NextInterval(rng)
	}
	return ts
}

// Stream is an iterator over packet arrival times, for callers that
// simulate unbounded links.
type Stream struct {
	model TimingModel
	rng   *stats.RNG
	now   float64
}

// NewStream returns a Stream starting at time 0.
func NewStream(model TimingModel, rng *stats.RNG) *Stream {
	return &Stream{model: model, rng: rng}
}

// Next returns the next packet arrival time.
func (s *Stream) Next() float64 {
	s.now += s.model.NextInterval(s.rng)
	return s.now
}

// Clock models the residual offset between the phone's clock and the
// receiver's after NTP synchronization (Sec. 4 uses NTP to "roughly
// synchronize" the two): a fixed offset plus slow drift.
type Clock struct {
	OffsetS float64 // residual offset after sync
	DriftS  float64 // drift in seconds per second
}

// NTPSyncClock returns a clock with typical post-NTP residuals: a few
// milliseconds of offset and ppm-scale drift.
func NTPSyncClock(rng *stats.RNG) Clock {
	return Clock{
		OffsetS: rng.Normal(0, 0.004),
		DriftS:  rng.Normal(0, 20e-6),
	}
}

// ToReceiver converts a phone-side timestamp to the receiver's
// timeline.
func (c Clock) ToReceiver(phoneT float64) float64 {
	return phoneT + c.OffsetS + c.DriftS*phoneT
}

// ToPhone converts a receiver-side timestamp to the phone's timeline
// (first-order inverse; drift is ppm-scale so the approximation error
// is negligible over a trip).
func (c Clock) ToPhone(receiverT float64) float64 {
	return (receiverT - c.OffsetS) / (1 + c.DriftS)
}
