package wifi

import (
	"testing"

	"vihot/internal/csi"
)

// TestDecodePooledMatchesDecode: both decoders must produce identical
// frames from one datagram; the pooled one hands back storage that
// round-trips through the pool.
func TestDecodePooledMatchesDecode(t *testing.T) {
	f := &csi.Frame{Time: 3.25, H: [][]complex128{
		{1 + 2i, 3 - 4i, 0.5},
		{-1, 0.25i, 2 + 2i},
	}}
	b, err := EncodeCSI(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // reuse the pool across iterations
		pooled, err := DecodePooled(b)
		if err != nil {
			t.Fatal(err)
		}
		if pooled.CSI.Time != heap.CSI.Time {
			t.Fatalf("Time = %v, want %v", pooled.CSI.Time, heap.CSI.Time)
		}
		for a := range heap.CSI.H {
			for k := range heap.CSI.H[a] {
				if pooled.CSI.H[a][k] != heap.CSI.H[a][k] {
					t.Fatalf("iter %d cell [%d][%d] = %v, want %v",
						i, a, k, pooled.CSI.H[a][k], heap.CSI.H[a][k])
				}
			}
		}
		csi.PutFrame(pooled.CSI)
	}
}

// TestDecodePooledAllocs is the satellite's point: steady-state pooled
// decoding must allocate strictly less than heap decoding (which pays
// the frame header plus one row per antenna on every packet).
func TestDecodePooledAllocs(t *testing.T) {
	f := &csi.Frame{Time: 1, H: make([][]complex128, 4)}
	for a := range f.H {
		f.H[a] = make([]complex128, 32)
	}
	b, err := EncodeCSI(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool so the measured window is steady-state.
	for i := 0; i < 8; i++ {
		pkt, err := DecodePooled(b)
		if err != nil {
			t.Fatal(err)
		}
		csi.PutFrame(pkt.CSI)
	}
	pooled := testing.AllocsPerRun(200, func() {
		pkt, err := DecodePooled(b)
		if err != nil {
			t.Fatal(err)
		}
		csi.PutFrame(pkt.CSI)
	})
	heap := testing.AllocsPerRun(200, func() {
		if _, err := Decode(b); err != nil {
			t.Fatal(err)
		}
	})
	// Heap decode pays ≥ na+2 allocations (frame, row index, rows);
	// pooled decode should pay ~1 (the Packet envelope).
	if pooled >= heap {
		t.Fatalf("pooled decode allocs/op = %v, heap = %v: pooling saved nothing", pooled, heap)
	}
	if pooled > 2 {
		t.Fatalf("pooled decode allocs/op = %v, want ≤2 at steady state", pooled)
	}
	t.Logf("allocs/op: pooled=%v heap=%v", pooled, heap)
}
