package wifi

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"vihot/internal/csi"
	"vihot/internal/imu"
	"vihot/internal/stats"
)

func TestCleanTimingRate(t *testing.T) {
	rng := stats.NewRNG(1)
	ts := CleanTiming().ArrivalTimes(rng, 60)
	rate := float64(len(ts)-1) / (ts[len(ts)-1] - ts[0])
	if rate < 430 || rate > 580 {
		t.Errorf("clean rate = %v Hz, want ≈500", rate)
	}
	var gap float64
	for i := 1; i < len(ts); i++ {
		if g := ts[i] - ts[i-1]; g > gap {
			gap = g
		}
	}
	if gap > 0.045 {
		t.Errorf("clean max gap = %v s, want ≤ ≈0.034+jitter", gap)
	}
}

func TestInterferedTimingDegrades(t *testing.T) {
	rng := stats.NewRNG(2)
	clean := CleanTiming().ArrivalTimes(rng.Fork(), 60)
	dirty := InterferedTiming().ArrivalTimes(rng.Fork(), 60)
	cr := float64(len(clean)-1) / (clean[len(clean)-1] - clean[0])
	dr := float64(len(dirty)-1) / (dirty[len(dirty)-1] - dirty[0])
	if dr >= cr {
		t.Errorf("interference did not reduce rate: %v vs %v", dr, cr)
	}
	if dr < 320 || dr > 470 {
		t.Errorf("interfered rate = %v Hz, want ≈400", dr)
	}
	var cg, dg float64
	for i := 1; i < len(clean); i++ {
		if g := clean[i] - clean[i-1]; g > cg {
			cg = g
		}
	}
	for i := 1; i < len(dirty); i++ {
		if g := dirty[i] - dirty[i-1]; g > dg {
			dg = g
		}
	}
	if dg <= cg {
		t.Errorf("interference did not stretch the max gap: %v vs %v", dg, cg)
	}
}

func TestArrivalTimesSorted(t *testing.T) {
	rng := stats.NewRNG(3)
	ts := CleanTiming().ArrivalTimes(rng, 5)
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatal("arrival times not strictly increasing")
		}
	}
	if ts[len(ts)-1] >= 5 {
		t.Error("arrival beyond the duration")
	}
}

func TestStreamMatchesModel(t *testing.T) {
	rng := stats.NewRNG(4)
	s := NewStream(CleanTiming(), rng)
	prev := 0.0
	for i := 0; i < 1000; i++ {
		next := s.Next()
		if next <= prev {
			t.Fatal("stream times not increasing")
		}
		prev = next
	}
	rate := 1000 / prev
	if rate < 400 || rate > 600 {
		t.Errorf("stream rate = %v", rate)
	}
}

func TestClockRoundTrip(t *testing.T) {
	c := Clock{OffsetS: 0.003, DriftS: 20e-6}
	for _, ts := range []float64{0, 1, 100, 3600} {
		r := c.ToReceiver(ts)
		back := c.ToPhone(r)
		if math.Abs(back-ts) > 1e-6 {
			t.Errorf("round trip at %v: %v", ts, back)
		}
	}
}

func TestNTPSyncClockResiduals(t *testing.T) {
	rng := stats.NewRNG(5)
	var offs []float64
	for i := 0; i < 200; i++ {
		c := NTPSyncClock(rng)
		offs = append(offs, c.OffsetS)
	}
	if s := stats.StdDev(offs); s < 0.001 || s > 0.01 {
		t.Errorf("NTP offset spread = %v s, want ms-scale", s)
	}
}

func mkFrame(t float64, na, ns int) *csi.Frame {
	f := &csi.Frame{Time: t, H: make([][]complex128, na)}
	for a := 0; a < na; a++ {
		f.H[a] = make([]complex128, ns)
		for k := 0; k < ns; k++ {
			f.H[a][k] = complex(float64(a)+0.25, float64(k)*0.125)
		}
	}
	return f
}

func TestWireCSIRoundTrip(t *testing.T) {
	f := mkFrame(12.375, 2, 30)
	b, err := EncodeCSI(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != TypeCSI || p.CSI == nil {
		t.Fatalf("decoded packet = %+v", p)
	}
	if p.CSI.Time != 12.375 {
		t.Errorf("time = %v", p.CSI.Time)
	}
	if p.CSI.NAntennas() != 2 || p.CSI.NSubcarriers() != 30 {
		t.Errorf("shape = %d×%d", p.CSI.NAntennas(), p.CSI.NSubcarriers())
	}
	// float32 round trip: values chosen representable exactly.
	for a := 0; a < 2; a++ {
		for k := 0; k < 30; k++ {
			if p.CSI.H[a][k] != f.H[a][k] {
				t.Fatalf("H[%d][%d] = %v, want %v", a, k, p.CSI.H[a][k], f.H[a][k])
			}
		}
	}
}

func TestWireIMURoundTrip(t *testing.T) {
	r := &imu.Reading{Time: 3.5, GyroZ: -12.5, AccelLat: 0.75}
	b := EncodeIMU(nil, r)
	p, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != TypeIMU || p.IMU == nil {
		t.Fatalf("decoded packet = %+v", p)
	}
	if p.IMU.GyroZ != -12.5 || p.IMU.AccelLat != 0.75 || p.IMU.Time != 3.5 {
		t.Errorf("IMU = %+v", p.IMU)
	}
}

func TestWireErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrShortPacket {
		t.Errorf("nil err = %v", err)
	}
	if _, err := Decode([]byte("XXXX..........")); err != ErrBadMagic {
		t.Errorf("magic err = %v", err)
	}
	good := EncodeIMU(nil, &imu.Reading{})
	bad := append([]byte(nil), good...)
	bad[4] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("bad version accepted")
	}
	bad = append([]byte(nil), good...)
	bad[5] = 42
	if _, err := Decode(bad); err == nil {
		t.Error("bad type accepted")
	}
	// Truncated CSI body.
	f := mkFrame(0, 2, 30)
	b, _ := EncodeCSI(nil, f)
	if _, err := Decode(b[:len(b)-4]); err != ErrShortPacket {
		t.Errorf("truncated err = %v", err)
	}
}

func TestWireShapeGuards(t *testing.T) {
	if _, err := EncodeCSI(nil, &csi.Frame{}); err != ErrBadShape {
		t.Errorf("empty frame err = %v", err)
	}
	ragged := &csi.Frame{H: [][]complex128{make([]complex128, 4), make([]complex128, 3)}}
	if _, err := EncodeCSI(nil, ragged); err != ErrBadShape {
		t.Errorf("ragged err = %v", err)
	}
}

func TestWireBufferReuse(t *testing.T) {
	f := mkFrame(0, 2, 8)
	buf := make([]byte, 0, 1024)
	out, err := EncodeCSI(buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Error("EncodeCSI did not reuse the buffer")
	}
}

func TestUDPLoopback(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := Dial(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	f := mkFrame(1.25, 2, 30)
	if err := send.SendCSI(f); err != nil {
		t.Fatal(err)
	}
	if err := send.SendIMU(&imu.Reading{Time: 2, GyroZ: 7}); err != nil {
		t.Fatal(err)
	}

	p1, err := recv.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := recv.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// UDP ordering on loopback is reliable in practice, but accept
	// either order to be safe.
	var gotCSI, gotIMU bool
	for _, p := range []*Packet{p1, p2} {
		switch p.Type {
		case TypeCSI:
			gotCSI = true
			if p.CSI.Time != 1.25 {
				t.Errorf("CSI time = %v", p.CSI.Time)
			}
		case TypeIMU:
			gotIMU = true
			if p.IMU.GyroZ != 7 {
				t.Errorf("gyro = %v", p.IMU.GyroZ)
			}
		}
	}
	if !gotCSI || !gotIMU {
		t.Errorf("missing packets: csi=%v imu=%v", gotCSI, gotIMU)
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	if _, err := recv.Recv(50 * time.Millisecond); err == nil {
		t.Error("expected timeout error")
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("not a real address::"); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := Listen("not a real address::"); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestWireCSIRoundTripProperty(t *testing.T) {
	// Arbitrary (finite float32-representable) CSI contents must
	// survive the wire format bit-exactly.
	f := func(vals []float32, na8, ns8 uint8) bool {
		na := int(na8%3) + 1
		ns := int(ns8%16) + 1
		frame := &csi.Frame{Time: 1.5, H: make([][]complex128, na)}
		idx := 0
		next := func() float64 {
			if len(vals) == 0 {
				return 0.25
			}
			v := vals[idx%len(vals)]
			idx++
			if v != v || v > 1e30 || v < -1e30 { // NaN/huge: substitute
				return 0.5
			}
			return float64(v)
		}
		for a := 0; a < na; a++ {
			frame.H[a] = make([]complex128, ns)
			for k := 0; k < ns; k++ {
				frame.H[a][k] = complex(next(), next())
			}
		}
		b, err := EncodeCSI(nil, frame)
		if err != nil {
			return false
		}
		p, err := Decode(b)
		if err != nil || p.Type != TypeCSI {
			return false
		}
		for a := 0; a < na; a++ {
			for k := 0; k < ns; k++ {
				if p.CSI.H[a][k] != frame.H[a][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeNeverPanicsOnMutations(t *testing.T) {
	// Bit-flip a valid packet everywhere; Decode must return errors,
	// never panic.
	f := mkFrame(2.5, 2, 30)
	good, err := EncodeCSI(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range good {
		for _, bit := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte(nil), good...)
			mut[i] ^= bit
			_, _ = Decode(mut) // must not panic
		}
	}
	// Truncations too.
	for n := 0; n < len(good); n += 7 {
		_, _ = Decode(good[:n])
	}
}
