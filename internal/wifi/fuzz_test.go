package wifi

import (
	"math"
	"testing"

	"vihot/internal/csi"
	"vihot/internal/imu"
)

// FuzzWireDecode throws arbitrary datagrams at the wire decoder. It
// must never panic, and any packet it accepts must satisfy the wire
// contract: a known type, exactly one payload set, a CSI shape within
// the encoder's bounds (so a decoded frame always re-encodes).
func FuzzWireDecode(f *testing.F) {
	// Seed with valid packets and systematic truncations of each.
	frame := &csi.Frame{Time: 1.5, H: [][]complex128{
		{1 + 2i, 3 - 4i, complex(math.NaN(), 0)},
		{-1, 0.5i, 2},
	}}
	csiPkt, err := EncodeCSI(nil, frame)
	if err != nil {
		f.Fatal(err)
	}
	imuPkt := EncodeIMU(nil, &imu.Reading{Time: 2.5, GyroZ: -3, AccelLat: 0.25})
	for _, pkt := range [][]byte{csiPkt, imuPkt} {
		for _, n := range []int{0, 4, 5, 6, headerLen - 1, headerLen, headerLen + 1, len(pkt) - 1, len(pkt)} {
			if n >= 0 && n <= len(pkt) {
				f.Add(append([]byte(nil), pkt[:n]...))
			}
		}
	}
	// Bad magic, bad version, bad type, hostile shape bytes.
	bad := append([]byte(nil), csiPkt...)
	bad[0] = 'X'
	f.Add(bad)
	bad = append([]byte(nil), csiPkt...)
	bad[4] = 99
	f.Add(bad)
	bad = append([]byte(nil), csiPkt...)
	bad[5] = 77
	f.Add(bad)
	bad = append([]byte(nil), csiPkt...)
	bad[headerLen] = 255 // antenna count way past maxAntennas
	f.Add(bad)
	// Trailing garbage after an exact CSI payload, and a shape field
	// shrunk so the true payload reads as a tail — both must be
	// rejected (ErrTrailingBytes), never decoded as a smaller frame.
	f.Add(append(append([]byte(nil), csiPkt...), 0xde, 0xad, 0xbe, 0xef))
	bad = append([]byte(nil), csiPkt...)
	bad[headerLen+1] = 2 // claims 2 subcarriers; 3 are on the wire
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := Decode(data)
		// The pooled decoder must agree with the heap decoder exactly:
		// same accept/reject verdict, same decoded contents.
		pp, perr := DecodePooled(data)
		if (err == nil) != (perr == nil) {
			t.Fatalf("Decode err=%v but DecodePooled err=%v", err, perr)
		}
		if pp != nil && pp.CSI != nil {
			if pkt.CSI == nil {
				t.Fatal("pooled decode produced CSI where heap decode did not")
			}
			if pp.CSI.Time != pkt.CSI.Time || len(pp.CSI.H) != len(pkt.CSI.H) {
				t.Fatalf("pooled/heap decode disagree: %+v vs %+v", pp.CSI, pkt.CSI)
			}
			for a := range pp.CSI.H {
				for k := range pp.CSI.H[a] {
					pv, hv := pp.CSI.H[a][k], pkt.CSI.H[a][k]
					// NaN != NaN; compare bit patterns via self-equality.
					if pv != hv && (pv == pv || hv == hv) {
						t.Fatalf("pooled/heap cell [%d][%d] disagree: %v vs %v", a, k, pv, hv)
					}
				}
			}
			csi.PutFrame(pp.CSI)
		}
		if err != nil {
			if pkt != nil {
				t.Fatalf("Decode returned both a packet and error %v", err)
			}
			return
		}
		switch pkt.Type {
		case TypeCSI:
			if pkt.CSI == nil || pkt.IMU != nil {
				t.Fatalf("CSI packet with wrong payloads set: %+v", pkt)
			}
			na, ns := pkt.CSI.NAntennas(), pkt.CSI.NSubcarriers()
			if na < 1 || na > maxAntennas || ns < 1 || ns > maxSubcarry {
				t.Fatalf("decoded CSI shape %dx%d outside wire bounds", na, ns)
			}
			for a, row := range pkt.CSI.H {
				if len(row) != ns {
					t.Fatalf("antenna %d has %d subcarriers, want %d", a, len(row), ns)
				}
			}
			if _, err := EncodeCSI(nil, pkt.CSI); err != nil {
				t.Fatalf("decoded CSI frame does not re-encode: %v", err)
			}
		case TypeIMU:
			if pkt.IMU == nil || pkt.CSI != nil {
				t.Fatalf("IMU packet with wrong payloads set: %+v", pkt)
			}
		default:
			t.Fatalf("Decode accepted unknown type %d", pkt.Type)
		}
	})
}
