package wifi

import (
	"errors"
	"testing"
	"time"

	"vihot/internal/csi"
	"vihot/internal/imu"
)

// enc builds a valid datagram for mutation.
func encCSI(t *testing.T, na, ns int) []byte {
	t.Helper()
	f := &csi.Frame{Time: 1, H: make([][]complex128, na)}
	for a := range f.H {
		f.H[a] = make([]complex128, ns)
	}
	b, err := EncodeCSI(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func encIMU(t *testing.T) []byte {
	t.Helper()
	return EncodeIMU(nil, &imu.Reading{Time: 1, GyroZ: 2, AccelLat: 3})
}

// mut copies b and applies f.
func mut(b []byte, f func([]byte) []byte) []byte {
	return f(append([]byte(nil), b...))
}

// TestDecodeMalformedTable is the decoder's adversarial contract: every
// malformed shape a lossy or hostile link can produce maps to the
// right sentinel. CSI payloads must be exact-length (a tail is how a
// bit-corrupted shape field smuggles a truncated frame through); IMU
// payloads have no shape field, so a padded tail stays tolerated.
func TestDecodeMalformedTable(t *testing.T) {
	csiPkt := encCSI(t, 2, 30)
	imuPkt := encIMU(t)

	cases := []struct {
		name string
		b    []byte
		want error // nil means decode must succeed
	}{
		{"empty", nil, ErrShortPacket},
		{"header-minus-one", csiPkt[:headerLen-1], ErrShortPacket},
		{"header-only-csi", csiPkt[:headerLen], ErrShortPacket},
		{"bad-magic", mut(csiPkt, func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"bad-version", mut(csiPkt, func(b []byte) []byte { b[4] = 0x7f; return b }), ErrBadVersion},
		{"unknown-type", mut(csiPkt, func(b []byte) []byte { b[5] = 9; return b }), ErrBadType},
		{"csi-no-shape-bytes", csiPkt[:headerLen+1], ErrShortPacket},
		{"csi-zero-antennas", mut(csiPkt, func(b []byte) []byte { b[headerLen] = 0; return b }), ErrBadShape},
		{"csi-too-many-antennas", mut(csiPkt, func(b []byte) []byte { b[headerLen] = maxAntennas + 1; return b }), ErrBadShape},
		{"csi-too-many-subcarriers", mut(csiPkt, func(b []byte) []byte { b[headerLen+1] = maxSubcarry + 1; return b }), ErrBadShape},
		{"csi-truncated-payload", csiPkt[:len(csiPkt)-1], ErrShortPacket},
		{"csi-payload-claims-more", mut(csiPkt, func(b []byte) []byte { b[headerLen+1] = 31; return b }), ErrShortPacket},
		{"csi-oversized-tail", append(append([]byte(nil), csiPkt...), 0xde, 0xad), ErrTrailingBytes},
		{"csi-payload-claims-less", mut(csiPkt, func(b []byte) []byte { b[headerLen+1] = 29; return b }), ErrTrailingBytes},
		{"imu-short-body", imuPkt[:len(imuPkt)-1], ErrShortPacket},
		{"imu-header-only", imuPkt[:headerLen], ErrShortPacket},
		{"imu-oversized-tail", append(append([]byte(nil), imuPkt...), 1, 2, 3, 4), nil},
		{"valid-csi", csiPkt, nil},
		{"valid-imu", imuPkt, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkt, err := Decode(tc.b)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Decode() = %v, want success", err)
				}
				if pkt == nil || (pkt.CSI == nil && pkt.IMU == nil) {
					t.Fatalf("Decode() returned empty packet %+v", pkt)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode() = %v, want %v", err, tc.want)
			}
			if pkt != nil {
				t.Fatalf("failed decode still returned a packet: %+v", pkt)
			}
		})
	}
}

// TestRecvErrorClassification pins the receive-error taxonomy the
// serving loop's backoff logic branches on.
func TestRecvErrorClassification(t *testing.T) {
	recv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	send, err := Dial(recv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	// Deadline expiry → ErrTimeout, not fatal.
	_, err = recv.Recv(30 * time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("timeout classified as %v", err)
	}
	if IsDecode(err) || IsFatal(err) {
		t.Fatalf("timeout misclassified: decode=%v fatal=%v", IsDecode(err), IsFatal(err))
	}

	// Undecodable datagram → ErrDecode with the wire error in the
	// chain; the socket stays usable.
	if err := send.SendRaw([]byte("JUNKJUNKJUNKJUNK")); err != nil {
		t.Fatal(err)
	}
	_, addr, err := recv.RecvFrom(2 * time.Second)
	if !IsDecode(err) || !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage datagram classified as %v", err)
	}
	if addr == nil {
		t.Fatal("decode error lost the source address")
	}
	if IsTimeout(err) || IsFatal(err) {
		t.Fatalf("decode error misclassified: timeout=%v fatal=%v", IsTimeout(err), IsFatal(err))
	}
	// The socket survived: a good datagram still arrives.
	if err := send.SendIMU(&imu.Reading{Time: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Recv(2 * time.Second); err != nil {
		t.Fatalf("socket unusable after decode error: %v", err)
	}

	// Closed socket → fatal.
	recv.Close()
	_, err = recv.Recv(30 * time.Millisecond)
	if err == nil || !IsFatal(err) {
		t.Fatalf("closed-socket error classified as %v (fatal=%v)", err, IsFatal(err))
	}

	// The predicates agree on edge inputs.
	if IsFatal(nil) {
		t.Fatal("IsFatal(nil)")
	}
	if !IsFatal(errors.New("anything else")) {
		t.Fatal("unclassified errors must be fatal")
	}
}
