package camera

import (
	"math"
	"testing"

	"vihot/internal/stats"
)

func TestFrameRate(t *testing.T) {
	c := NewTracker(stats.NewRNG(1))
	frames := 0
	for ts := 0.0; ts < 10; ts += 0.001 {
		if _, ok := c.Sample(ts, 0, 0); ok {
			frames++
		}
	}
	if frames < 280 || frames > 320 {
		t.Errorf("frames in 10 s = %d, want ≈300 at 30 FPS", frames)
	}
}

func TestFrameIntervalGuard(t *testing.T) {
	c := &Tracker{FPS: 0}
	if got := c.FrameInterval(); math.Abs(got-1.0/30) > 1e-12 {
		t.Errorf("FPS=0 interval = %v", got)
	}
}

func TestAccuracySlowMotion(t *testing.T) {
	c := NewTracker(stats.NewRNG(2))
	var errs []float64
	for ts := 0.0; ts < 20; ts += 0.001 {
		truth := 30 * math.Sin(ts*0.5)
		if est, ok := c.Sample(ts, truth, 15*math.Cos(ts*0.5)); ok && est.Valid {
			errs = append(errs, math.Abs(est.Yaw-truth))
		}
	}
	if m := stats.Mean(errs); m > 3 {
		t.Errorf("slow-motion mean error = %v°, want small", m)
	}
}

func TestMotionBlurGrowsError(t *testing.T) {
	rng := stats.NewRNG(3)
	slow := NewTracker(rng.Fork())
	fast := NewTracker(rng.Fork())
	var slowErrs, fastErrs []float64
	for ts := 0.0; ts < 30; ts += 0.001 {
		if est, ok := slow.Sample(ts, 0, 20); ok && est.Valid {
			slowErrs = append(slowErrs, math.Abs(est.Yaw))
		}
		if est, ok := fast.Sample(ts, 0, 180); ok && est.Valid {
			fastErrs = append(fastErrs, math.Abs(est.Yaw))
		}
	}
	if stats.Mean(fastErrs) <= stats.Mean(slowErrs) {
		t.Errorf("fast motion not blurrier: %v vs %v",
			stats.Mean(fastErrs), stats.Mean(slowErrs))
	}
}

func TestLosesTrackAtHighSpeed(t *testing.T) {
	c := NewTracker(stats.NewRNG(4))
	lost := false
	for ts := 0.0; ts < 2; ts += 0.001 {
		if est, ok := c.Sample(ts, 0, 300); ok && !est.Valid {
			lost = true
			break
		}
	}
	if !lost {
		t.Error("camera never lost track at 300°/s")
	}
}

func TestReacquiresAfterLoss(t *testing.T) {
	c := NewTracker(stats.NewRNG(5))
	// Fast motion to lose track.
	for ts := 0.0; ts < 0.5; ts += 0.01 {
		c.Sample(ts, 0, 300)
	}
	// Then still: must become valid again within ReacquireS + margin.
	recovered := false
	for ts := 0.5; ts < 2; ts += 0.01 {
		if est, ok := c.Sample(ts, 0, 0); ok && est.Valid {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Error("camera never reacquired the face")
	}
}

func TestNightNoiseWorse(t *testing.T) {
	rng := stats.NewRNG(6)
	day := NewTracker(rng.Fork())
	night := NewTracker(rng.Fork())
	night.Light = Night
	var dayErrs, nightErrs []float64
	for ts := 0.0; ts < 30; ts += 0.001 {
		if est, ok := day.Sample(ts, 0, 0); ok && est.Valid {
			dayErrs = append(dayErrs, math.Abs(est.Yaw))
		}
		if est, ok := night.Sample(ts, 0, 0); ok && est.Valid {
			nightErrs = append(nightErrs, math.Abs(est.Yaw))
		}
	}
	if stats.Mean(nightErrs) <= 2*stats.Mean(dayErrs) {
		t.Errorf("night not clearly worse: %v vs %v",
			stats.Mean(nightErrs), stats.Mean(dayErrs))
	}
}

func TestLightString(t *testing.T) {
	if Daylight.String() != "daylight" || Dusk.String() != "dusk" || Night.String() != "night" {
		t.Error("Light.String labels wrong")
	}
}

func TestReset(t *testing.T) {
	c := NewTracker(stats.NewRNG(7))
	for ts := 0.0; ts < 0.5; ts += 0.01 {
		c.Sample(ts, 0, 300) // lose track
	}
	c.Reset()
	if est, ok := c.Sample(0, 5, 0); !ok || !est.Valid {
		t.Error("Reset did not clear loss state")
	}
}

func TestNilRNGDeterministic(t *testing.T) {
	c := &Tracker{FPS: 30}
	est, ok := c.Sample(0, 42, 0)
	if !ok || !est.Valid || est.Yaw != 42 {
		t.Errorf("nil-RNG estimate = %+v", est)
	}
}
