// Package camera models the conventional video-based head tracker
// that ViHOT both replaces (as the baseline whose sampling rate it
// beats by >10×, Sec. 2) and falls back to during large steering
// events (Sec. 3.6.2). Only its observable envelope matters to the
// rest of the system: frame rate, processing latency, per-frame noise
// that grows with angular speed (rolling-shutter motion blur), light
// sensitivity, and loss of track during fast turns.
package camera

import (
	"math"

	"vihot/internal/stats"
)

// Light is the cabin illumination condition.
type Light int

const (
	Daylight Light = iota
	Dusk
	Night
)

// noiseScale returns the multiplier the light level applies to the
// per-frame estimation noise: typical cameras degrade sharply in the
// dark (Sec. 2.1).
func (l Light) noiseScale() float64 {
	switch l {
	case Dusk:
		return 2.5
	case Night:
		return 6
	default:
		return 1
	}
}

// String implements fmt.Stringer.
func (l Light) String() string {
	switch l {
	case Dusk:
		return "dusk"
	case Night:
		return "night"
	default:
		return "daylight"
	}
}

// Estimate is one camera head-pose output.
type Estimate struct {
	Time  float64
	Yaw   float64
	Valid bool // false while the tracker has lost the face
}

// Tracker simulates a dlib-style video head tracker.
type Tracker struct {
	FPS          float64 // frame rate (30 for a phone front camera)
	LatencyS     float64 // image-processing delay per frame
	BaseNoiseDeg float64 // per-frame noise in good light, slow motion
	BlurPerDPS   float64 // extra noise per deg/s of head speed
	LoseTrackDPS float64 // above this speed the face detector fails
	ReacquireS   float64 // time to reacquire after losing track
	Light        Light

	rng       *stats.RNG
	nextFrame float64
	lostUntil float64
}

// NewTracker returns a 30 FPS daylight tracker with dlib-like
// characteristics.
func NewTracker(rng *stats.RNG) *Tracker {
	return &Tracker{
		FPS:          30,
		LatencyS:     0.045,
		BaseNoiseDeg: 1.5,
		BlurPerDPS:   0.03,
		LoseTrackDPS: 220,
		ReacquireS:   0.4,
		rng:          rng,
	}
}

// FrameInterval returns the camera sampling interval.
func (c *Tracker) FrameInterval() float64 {
	if c.FPS <= 0 {
		return 1.0 / 30
	}
	return 1 / c.FPS
}

// Sample advances the tracker to time t and returns the newest frame
// estimate, if a new frame completed since the last call. truthYaw
// and truthRate describe the head at the frame capture instant.
//
// The estimate reflects the head pose LatencyS ago — video processing
// is not free — and its noise grows with head speed, the motion-blur
// effect that motivates ViHOT (Sec. 2.1).
func (c *Tracker) Sample(t float64, truthYaw, truthRate float64) (Estimate, bool) {
	if t < c.nextFrame {
		return Estimate{}, false
	}
	c.nextFrame = t + c.FrameInterval()

	speed := math.Abs(truthRate)
	if speed > c.LoseTrackDPS {
		c.lostUntil = t + c.ReacquireS
	}
	if t < c.lostUntil {
		return Estimate{Time: t, Valid: false}, true
	}
	noise := c.BaseNoiseDeg*c.Light.noiseScale() + c.BlurPerDPS*speed
	est := truthYaw
	if c.rng != nil {
		est += c.rng.Normal(0, noise)
	}
	return Estimate{Time: t, Yaw: est, Valid: true}, true
}

// Latency returns the processing latency.
func (c *Tracker) Latency() float64 { return c.LatencyS }

// ForceLoss drops the tracker's face lock until the given time — an
// externally injected outage (occlusion, glare, a hand in front of the
// lens) as opposed to the speed-induced loss the model generates by
// itself. Frames sampled before `until` report Valid=false.
func (c *Tracker) ForceLoss(until float64) {
	if until > c.lostUntil {
		c.lostUntil = until
	}
}

// Reset clears frame scheduling and loss state.
func (c *Tracker) Reset() { c.nextFrame, c.lostUntil = 0, 0 }
