package vihot_test

import (
	"math"
	"math/cmplx"
	"path/filepath"
	"testing"

	"vihot"
)

// TestEndToEndSimulatedDrive is the headline integration test: profile
// a driver in the simulated cabin, track a continuous-sweep run, and
// require the paper's accuracy band (median angular error 4°–10°,
// allowing slack for seed variance).
func TestEndToEndSimulatedDrive(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive integration test")
	}
	sim, err := vihot.NewSimulator(vihot.SimConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	profile, dur, err := sim.ProfileDriver(vihot.DriverA)
	if err != nil {
		t.Fatal(err)
	}
	if dur > 140 {
		t.Errorf("profiling took %.0f s, want ≈100 s", dur)
	}
	if len(profile.Positions) != 10 {
		t.Errorf("profile positions = %d", len(profile.Positions))
	}

	res, err := sim.Sweep(profile, vihot.DriverA, 30, 115, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if med := res.MedianError(); med > 12 {
		t.Errorf("median error %.1f°, want within the paper's band (≤ ≈10°)", med)
	}
	if len(res.ForecastErrors(0)) == 0 {
		t.Error("no forecast errors recorded")
	}
	if res.ForecastErrors(5) != nil {
		t.Error("out-of-range horizon must return nil")
	}
	if rate := res.SampleRateHz(); rate < 400 {
		t.Errorf("sampling rate %.0f Hz, want ≥400", rate)
	}
}

func TestSimulatedDriveWithSteering(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive integration test")
	}
	sim, err := vihot.NewSimulator(vihot.SimConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := sim.ProfileDriver(vihot.DriverC)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Drive(profile, vihot.DriverC, 30, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates()) == 0 {
		t.Fatal("no estimates")
	}
	if med := res.MedianError(); med > 12 {
		t.Errorf("drive median error = %.1f°", med)
	}
}

func TestSimulatorConfigurations(t *testing.T) {
	cases := []vihot.SimConfig{
		{Layout: 2, Seed: 1},
		{Passenger: true, Seed: 1},
		{AntennaVibration: true, Seed: 1},
		{WiFiInterference: true, Seed: 1},
	}
	for i, cfg := range cases {
		if _, err := vihot.NewSimulator(cfg); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
	if _, err := vihot.NewSimulator(vihot.SimConfig{Layout: 9}); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestManualProfilingAPI(t *testing.T) {
	// Build a profile from hand-fed samples — the path a real
	// deployment (reading a CSI tool + camera labels) would use.
	pr := vihot.NewProfiler(0)
	pr.StartPosition(0)
	for ts := 0.0; ts < 2; ts += 0.005 {
		pr.AddPhase(ts, 0.4) // stable: facing front
	}
	for ts := 2.0; ts < 10; ts += 0.005 {
		theta := 75 * math.Sin(ts-2)
		pr.AddPhase(ts, 0.4+0.9*math.Sin(theta*math.Pi/180))
	}
	for ts := 0.0; ts < 10; ts += 1.0 / 60 {
		theta := 0.0
		if ts >= 2 {
			theta = 75 * math.Sin(ts-2)
		}
		pr.AddTruth(ts, theta)
	}
	if err := pr.EndPosition(); err != nil {
		t.Fatal(err)
	}
	profile, err := pr.Build()
	if err != nil {
		t.Fatal(err)
	}

	tk, err := vihot.NewTracker(profile, vihot.DefaultTrackerConfig())
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	for ts := 0.0; ts < 8; ts += 0.002 {
		theta := 75 * math.Sin(ts)
		est, ok := tk.Push(ts, 0.4+0.9*math.Sin(theta*math.Pi/180))
		if !ok {
			continue
		}
		if math.Abs(est.Yaw-theta) < 10 {
			good++
		}
	}
	if good < 100 {
		t.Errorf("only %d estimates within 10°", good)
	}
}

func TestSanitizeFrame(t *testing.T) {
	f := &vihot.Frame{H: [][]complex128{
		make([]complex128, 30),
		make([]complex128, 30),
	}}
	for k := 0; k < 30; k++ {
		f.H[0][k] = cmplx.Rect(1, 0.9)
		f.H[1][k] = cmplx.Rect(1, 0.2)
	}
	phi, err := vihot.SanitizeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-0.7) > 1e-9 {
		t.Errorf("sanitized phase = %v, want 0.7", phi)
	}
}

func TestPipelineAPI(t *testing.T) {
	sim, err := vihot.NewSimulator(vihot.SimConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := sim.ProfileDriver(vihot.DriverB)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := vihot.NewPipeline(profile, vihot.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Steering detected via IMU routes camera estimates through.
	pl.PushCamera(vihot.CameraEstimate{Yaw: 9, Valid: true})
	for ts := 0.0; ts < 1; ts += 0.01 {
		pl.PushIMU(vihot.IMUReading{Time: ts, GyroZ: 30})
	}
	est, ok := pl.PushCSI(1.0, 0.1)
	if !ok || est.Source != vihot.SourceCamera {
		t.Errorf("fallback not engaged: %+v ok=%v", est, ok)
	}
}

func TestProfilePersistenceAPI(t *testing.T) {
	sim, err := vihot.NewSimulator(vihot.SimConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := sim.ProfileDriver(vihot.DriverA)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "driver-a.profile")
	if err := vihot.SaveProfile(path, profile); err != nil {
		t.Fatal(err)
	}
	loaded, err := vihot.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Positions) != len(profile.Positions) {
		t.Errorf("loaded %d positions, want %d", len(loaded.Positions), len(profile.Positions))
	}
	// A loaded profile must track.
	if _, err := vihot.NewTracker(loaded, vihot.DefaultTrackerConfig()); err != nil {
		t.Errorf("loaded profile rejected: %v", err)
	}
	// Its quality report is available through the API.
	q := loaded.Quality()
	if q.Positions != len(loaded.Positions) {
		t.Errorf("quality positions = %d", q.Positions)
	}
}

func TestSmootherAPI(t *testing.T) {
	sm := vihot.NewSmoother()
	est := vihot.Estimate{Time: 0, Yaw: 10, Source: vihot.SourceCSI}
	if got := sm.Update(est); got != 10 {
		t.Errorf("first update = %v", got)
	}
	if sm.Predict(0.1) != sm.Yaw() {
		t.Error("prediction with zero rate must equal current yaw")
	}
}
